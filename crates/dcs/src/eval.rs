//! Execution engine for lambda DCS formulas.
//!
//! A formula executed against a table denotes a [`Denotation`]: a set of
//! values (each traced back to the cells it came from), a set of records, or
//! a single number produced by an aggregate / arithmetic operation. The cell
//! tracing is what the provenance model of §4 consumes: the output provenance
//! `P_O(Q, T)` of a value-denoting query is exactly the union of the traced
//! cells of its denotation.
//!
//! The evaluator is **index-backed and stateful**: it consults the shared
//! [`TableIndex`] (inverted value indexes, sorted numeric projections,
//! value-sorted permutations) instead of scanning rows, and it memoizes the
//! denotations of record-denoting subformulas across calls. A single
//! [`Evaluator`] session therefore amortizes work across the hundreds of
//! candidate formulas the semantic parser executes per question — shared
//! bases like `Country.Greece` are evaluated once. The scan-based semantics
//! it must agree with are kept in [`crate::reference`] as an executable
//! specification, enforced by a differential proptest suite.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use wtq_table::{CellRef, KnowledgeBase, RecordIdx, Table, TableIndex, Value};

use crate::ast::{AggregateOp, CompareOp, Formula, SuperlativeOp};
use crate::error::DcsError;
use crate::Result;

/// Maximum formula nesting depth accepted by the evaluator. Machine-generated
/// candidates never approach this; the guard only protects against
/// pathological inputs.
pub const MAX_EVAL_DEPTH: usize = 64;

/// Maximum number of memoized record denotations per evaluator session. The
/// candidate generator produces a few hundred formulas per question, far
/// below this; the cap only bounds memory for adversarial workloads.
const DENOTATION_CACHE_CAP: usize = 8192;

/// One value of a value-denoting formula, together with the cells that
/// contain it.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedValue {
    /// The value itself.
    pub value: Value,
    /// Cells whose content is this value and which participated in producing
    /// it (empty for purely constant values that do not appear in the table).
    pub cells: Vec<CellRef>,
}

impl TracedValue {
    /// A value with no cell trace (e.g. a literal constant absent from the
    /// table).
    pub fn untraced(value: Value) -> Self {
        TracedValue {
            value,
            cells: Vec::new(),
        }
    }
}

/// The result of evaluating a formula against a table.
#[derive(Debug, Clone, PartialEq)]
pub enum Denotation {
    /// A set of values, deduplicated, in first-encounter order.
    Values(Vec<TracedValue>),
    /// A set of record indices.
    Records(BTreeSet<RecordIdx>),
    /// A single number produced by an aggregate or arithmetic operation.
    Number(f64),
}

impl Denotation {
    /// Human-readable kind name, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Denotation::Values(_) => "values",
            Denotation::Records(_) => "records",
            Denotation::Number(_) => "number",
        }
    }

    /// Whether the denotation is empty (no values / records). Numbers are
    /// never empty.
    pub fn is_empty(&self) -> bool {
        match self {
            Denotation::Values(v) => v.is_empty(),
            Denotation::Records(r) => r.is_empty(),
            Denotation::Number(_) => false,
        }
    }

    /// Number of elements denoted.
    pub fn len(&self) -> usize {
        match self {
            Denotation::Values(v) => v.len(),
            Denotation::Records(r) => r.len(),
            Denotation::Number(_) => 1,
        }
    }

    /// The plain values of a value denotation (numbers become single values).
    pub fn values(&self) -> Vec<Value> {
        match self {
            Denotation::Values(v) => v.iter().map(|tv| tv.value.clone()).collect(),
            Denotation::Number(n) => vec![Value::Num(*n)],
            Denotation::Records(_) => Vec::new(),
        }
    }

    /// All cells traced by a value denotation (the `P_O` of non-aggregate
    /// value queries).
    pub fn traced_cells(&self) -> Vec<CellRef> {
        match self {
            Denotation::Values(v) => {
                let mut cells: Vec<CellRef> = v.iter().flat_map(|tv| tv.cells.clone()).collect();
                cells.sort_unstable();
                cells.dedup();
                cells
            }
            _ => Vec::new(),
        }
    }

    /// The record set, if this denotes records.
    pub fn records(&self) -> Option<&BTreeSet<RecordIdx>> {
        match self {
            Denotation::Records(r) => Some(r),
            _ => None,
        }
    }

    /// Interpret the denotation as a single number, if possible: either a
    /// `Number`, or a singleton value set whose value is numeric.
    pub fn as_single_number(&self) -> Option<f64> {
        match self {
            Denotation::Number(n) => Some(*n),
            Denotation::Values(v) if v.len() == 1 => v[0].value.as_number(),
            _ => None,
        }
    }
}

/// Records whose numeric cell in `column` satisfies `op` against
/// `threshold`, answered from the index's sorted numeric projection: binary
/// search for the ordered operators, a linear pass over the numeric cells for
/// `!=` (whose tolerance band is not a prefix/suffix).
///
/// Shared with `wtq-sql`'s WHERE planner, so both engines agree on
/// comparison semantics by construction.
pub fn compare_records(
    index: &TableIndex,
    column: usize,
    op: CompareOp,
    threshold: f64,
) -> BTreeSet<RecordIdx> {
    let col = index.column(column);
    let matched: Box<dyn Iterator<Item = &(f64, RecordIdx)>> = match op {
        CompareOp::Lt => Box::new(col.numeric_below(threshold, false).iter()),
        CompareOp::Leq => Box::new(col.numeric_below(threshold, true).iter()),
        CompareOp::Gt => Box::new(col.numeric_above(threshold, false).iter()),
        CompareOp::Geq => Box::new(col.numeric_above(threshold, true).iter()),
        CompareOp::Neq => Box::new(
            col.numeric_entries()
                .iter()
                .filter(move |(n, _)| op.compare(*n, threshold)),
        ),
    };
    matched.map(|&(_, record)| record).collect()
}

/// Evaluator bound to one table (and its indexed KB view). Create one per
/// table and reuse it across formulas: the session memoizes record-denoting
/// subformula results, so candidate pools sharing bases (`Country.Greece`
/// under many projections and aggregates) pay for each base once.
pub struct Evaluator<'a> {
    table: &'a Table,
    kb: KnowledgeBase<'a>,
    /// Memoized denotations of record-denoting subformulas, keyed by the
    /// formula's structure, together with the formula's nesting depth (so a
    /// cache hit can still enforce the depth guard a fresh recursion would
    /// have tripped). Sound because the table (and thus every denotation)
    /// is immutable for the life of the session.
    cache: RefCell<HashMap<Formula, (BTreeSet<RecordIdx>, usize)>>,
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator for `table`, building the columnar index.
    pub fn new(table: &'a Table) -> Self {
        Self::with_kb(KnowledgeBase::new(table))
    }

    /// Create an evaluator sharing an already-built [`TableIndex`] of the
    /// same table (no per-session index build).
    pub fn with_index(table: &'a Table, index: Arc<TableIndex>) -> Self {
        Self::with_kb(KnowledgeBase::with_index(table, index))
    }

    fn with_kb(kb: KnowledgeBase<'a>) -> Self {
        Evaluator {
            table: kb.table(),
            kb,
            cache: RefCell::new(HashMap::new()),
            cache_hits: Cell::new(0),
            cache_misses: Cell::new(0),
        }
    }

    /// The table being queried.
    pub fn table(&self) -> &Table {
        self.table
    }

    /// The knowledge-base view of the table.
    pub fn kb(&self) -> &KnowledgeBase<'a> {
        &self.kb
    }

    /// The columnar index backing this session.
    pub fn index(&self) -> &TableIndex {
        self.kb.index()
    }

    /// `(hits, misses)` of the cross-formula denotation cache, for
    /// instrumentation and benchmarks.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache_hits.get(), self.cache_misses.get())
    }

    /// Evaluate `formula` against the table.
    pub fn eval(&self, formula: &Formula) -> Result<Denotation> {
        self.eval_depth(formula, 0)
    }

    /// Whether a formula's denotation is worth memoizing: composite and
    /// (potentially) record-denoting. Atomic formulas are cheaper to
    /// re-evaluate than to look up.
    fn cacheable(formula: &Formula) -> bool {
        matches!(
            formula,
            Formula::Join { .. }
                | Formula::CompareJoin { .. }
                | Formula::Prev(_)
                | Formula::Next(_)
                | Formula::Intersect(_, _)
                | Formula::Union(_, _)
                | Formula::SuperlativeRecords { .. }
                | Formula::RecordIndexSuperlative { .. }
        )
    }

    fn eval_depth(&self, formula: &Formula, depth: usize) -> Result<Denotation> {
        if depth > MAX_EVAL_DEPTH {
            return Err(DcsError::DepthExceeded(MAX_EVAL_DEPTH));
        }
        let cacheable = Self::cacheable(formula);
        if cacheable {
            if let Some((records, formula_depth)) = self.cache.borrow().get(formula) {
                // A fresh evaluation of this subformula would recurse to
                // `depth + formula_depth - 1`; replicate the depth guard it
                // would have hit so cached and uncached evaluation (and the
                // scan reference) report identical errors.
                if depth + formula_depth - 1 > MAX_EVAL_DEPTH {
                    return Err(DcsError::DepthExceeded(MAX_EVAL_DEPTH));
                }
                self.cache_hits.set(self.cache_hits.get() + 1);
                return Ok(Denotation::Records(records.clone()));
            }
        }
        let result = self.eval_node(formula, depth)?;
        if cacheable {
            self.cache_misses.set(self.cache_misses.get() + 1);
            if let Denotation::Records(records) = &result {
                let mut cache = self.cache.borrow_mut();
                if cache.len() < DENOTATION_CACHE_CAP {
                    cache.insert(formula.clone(), (records.clone(), formula.depth()));
                }
            }
        }
        Ok(result)
    }

    fn eval_node(&self, formula: &Formula, depth: usize) -> Result<Denotation> {
        match formula {
            Formula::Const(value) => Ok(self.eval_const(value)),
            Formula::AllRecords => Ok(Denotation::Records(self.table.record_indices().collect())),
            Formula::Join { column, values } => {
                let column_idx = self.column(column)?;
                let values = self.eval_depth(values, depth + 1)?;
                self.eval_join(column_idx, &values)
            }
            Formula::CompareJoin { column, op, value } => {
                let column_idx = self.column(column)?;
                let value = self.eval_depth(value, depth + 1)?;
                let threshold = value.as_single_number().ok_or(DcsError::Cardinality {
                    operator: "comparison",
                    expected: "a single numeric value",
                    got: value.len(),
                })?;
                Ok(Denotation::Records(compare_records(
                    self.index(),
                    column_idx,
                    *op,
                    threshold,
                )))
            }
            Formula::ColumnValues { column, records } => {
                let column_idx = self.column(column)?;
                let records = self.eval_depth(records, depth + 1)?;
                let records = self.expect_records("column projection", records)?;
                Ok(self.project_column(column_idx, &records))
            }
            Formula::Prev(sub) => {
                let records = self.eval_depth(sub, depth + 1)?;
                let records = self.expect_records("Prev", records)?;
                let shifted: BTreeSet<RecordIdx> = records
                    .iter()
                    .filter_map(|&r| self.table.prev_record(r))
                    .collect();
                Ok(Denotation::Records(shifted))
            }
            Formula::Next(sub) => {
                let records = self.eval_depth(sub, depth + 1)?;
                let records = self.expect_records("R[Prev]", records)?;
                let shifted: BTreeSet<RecordIdx> = records
                    .iter()
                    .filter_map(|&r| self.table.next_record(r))
                    .collect();
                Ok(Denotation::Records(shifted))
            }
            Formula::Intersect(a, b) => {
                let left = self.eval_depth(a, depth + 1)?;
                let right = self.eval_depth(b, depth + 1)?;
                self.eval_intersect(left, right)
            }
            Formula::Union(a, b) => {
                let left = self.eval_depth(a, depth + 1)?;
                let right = self.eval_depth(b, depth + 1)?;
                self.eval_union(left, right)
            }
            Formula::Aggregate { op, sub } => {
                let inner = self.eval_depth(sub, depth + 1)?;
                self.eval_aggregate(*op, inner)
            }
            Formula::SuperlativeRecords {
                op,
                records,
                column,
            } => {
                let column_idx = self.column(column)?;
                let records = self.eval_depth(records, depth + 1)?;
                let records = self.expect_records("superlative", records)?;
                Ok(Denotation::Records(
                    self.superlative_records(*op, &records, column_idx),
                ))
            }
            Formula::RecordIndexSuperlative { op, records } => {
                let records = self.eval_depth(records, depth + 1)?;
                let records = self.expect_records("index superlative", records)?;
                let chosen = match op {
                    SuperlativeOp::Argmax => records.iter().next_back().copied(),
                    SuperlativeOp::Argmin => records.iter().next().copied(),
                };
                Ok(Denotation::Records(chosen.into_iter().collect()))
            }
            Formula::MostCommonValue { op, values, column } => {
                let column_idx = self.column(column)?;
                let values = self.eval_depth(values, depth + 1)?;
                self.eval_most_common(*op, values, column_idx)
            }
            Formula::CompareValues {
                op,
                values,
                key_column,
                value_column,
            } => {
                let key_idx = self.column(key_column)?;
                let value_idx = self.column(value_column)?;
                let values = self.eval_depth(values, depth + 1)?;
                self.eval_compare_values(*op, values, key_idx, value_idx)
            }
            Formula::Sub(a, b) => {
                let left = self.eval_depth(a, depth + 1)?;
                let right = self.eval_depth(b, depth + 1)?;
                let left = self.expect_number("difference", &left)?;
                let right = self.expect_number("difference", &right)?;
                Ok(Denotation::Number(left - right))
            }
        }
    }

    fn column(&self, name: &str) -> Result<usize> {
        self.index()
            .column_index(name)
            .ok_or_else(|| DcsError::UnknownColumn(name.to_string()))
    }

    /// A constant denotes the set of table cells holding that value (across
    /// all columns); if the value does not appear in the table it still
    /// denotes itself, untraced.
    fn eval_const(&self, value: &Value) -> Denotation {
        let mut cells = Vec::new();
        for column in 0..self.table.num_columns() {
            cells.extend(self.kb.matching_cells(column, value));
        }
        cells.sort_unstable();
        Denotation::Values(vec![TracedValue {
            value: value.clone(),
            cells,
        }])
    }

    fn eval_join(&self, column: usize, values: &Denotation) -> Result<Denotation> {
        let wanted: Vec<Value> = match values {
            Denotation::Values(v) => v.iter().map(|tv| tv.value.clone()).collect(),
            Denotation::Number(n) => vec![Value::Num(*n)],
            Denotation::Records(_) => {
                return Err(DcsError::TypeMismatch {
                    operator: "join",
                    expected: "values",
                    found: "records",
                })
            }
        };
        let mut records = BTreeSet::new();
        for value in &wanted {
            records.extend(self.kb.join(column, value).iter().copied());
        }
        Ok(Denotation::Records(records))
    }

    fn project_column(&self, column: usize, records: &BTreeSet<RecordIdx>) -> Denotation {
        let mut out: Vec<TracedValue> = Vec::new();
        // First-encounter position of each distinct value — O(1) per record
        // versus the former linear scan (equivalent up to `Value`'s
        // documented hash/equality boundary caveat).
        let mut position: HashMap<Value, usize> = HashMap::new();
        for &record in records {
            let Some(value) = self.table.value_at(record, column) else {
                continue;
            };
            let cell = CellRef::new(record, column);
            if let Some(&at) = position.get(&value) {
                out[at].cells.push(cell);
            } else {
                position.insert(value.clone(), out.len());
                out.push(TracedValue {
                    value,
                    cells: vec![cell],
                });
            }
        }
        Denotation::Values(out)
    }

    fn expect_records(
        &self,
        operator: &'static str,
        denotation: Denotation,
    ) -> Result<BTreeSet<RecordIdx>> {
        match denotation {
            Denotation::Records(r) => Ok(r),
            other => Err(DcsError::TypeMismatch {
                operator,
                expected: "records",
                found: other.kind(),
            }),
        }
    }

    fn expect_number(&self, operator: &'static str, denotation: &Denotation) -> Result<f64> {
        denotation.as_single_number().ok_or(match denotation {
            Denotation::Values(v) => DcsError::Cardinality {
                operator,
                expected: "a single numeric value",
                got: v.len(),
            },
            other => DcsError::TypeMismatch {
                operator,
                expected: "a number",
                found: other.kind(),
            },
        })
    }

    fn eval_intersect(&self, left: Denotation, right: Denotation) -> Result<Denotation> {
        match (left, right) {
            (Denotation::Records(a), Denotation::Records(b)) => {
                Ok(Denotation::Records(a.intersection(&b).copied().collect()))
            }
            (Denotation::Values(a), Denotation::Values(b)) => {
                let present: std::collections::HashSet<&Value> =
                    b.iter().map(|tv| &tv.value).collect();
                let out = a
                    .into_iter()
                    .filter(|tv| present.contains(&tv.value))
                    .collect();
                Ok(Denotation::Values(out))
            }
            (left, right) => Err(DcsError::TypeMismatch {
                operator: "intersection",
                expected: "two record sets or two value sets",
                found: if matches!(left, Denotation::Number(_)) {
                    left.kind()
                } else {
                    right.kind()
                },
            }),
        }
    }

    fn eval_union(&self, left: Denotation, right: Denotation) -> Result<Denotation> {
        match (left, right) {
            (Denotation::Records(a), Denotation::Records(b)) => {
                Ok(Denotation::Records(a.union(&b).copied().collect()))
            }
            (Denotation::Values(mut a), Denotation::Values(b)) => {
                let mut position: HashMap<Value, usize> = a
                    .iter()
                    .enumerate()
                    .map(|(i, tv)| (tv.value.clone(), i))
                    .collect();
                for tv in b {
                    if let Some(&at) = position.get(&tv.value) {
                        let existing = &mut a[at];
                        existing.cells.extend(tv.cells);
                        existing.cells.sort_unstable();
                        existing.cells.dedup();
                    } else {
                        position.insert(tv.value.clone(), a.len());
                        a.push(tv);
                    }
                }
                Ok(Denotation::Values(a))
            }
            (left, right) => Err(DcsError::TypeMismatch {
                operator: "union",
                expected: "two record sets or two value sets",
                found: if matches!(left, Denotation::Number(_)) {
                    left.kind()
                } else {
                    right.kind()
                },
            }),
        }
    }

    fn eval_aggregate(&self, op: AggregateOp, inner: Denotation) -> Result<Denotation> {
        if op == AggregateOp::Count {
            return Ok(Denotation::Number(match &inner {
                Denotation::Records(r) => r.len() as f64,
                Denotation::Values(v) => {
                    v.iter().map(|tv| tv.cells.len().max(1)).sum::<usize>() as f64
                }
                Denotation::Number(_) => 1.0,
            }));
        }
        let numbers = match &inner {
            Denotation::Values(values) => {
                let mut numbers = Vec::with_capacity(values.len());
                for tv in values {
                    // Count each cell occurrence once so that sums over
                    // repeated values match the SQL semantics.
                    let occurrences = tv.cells.len().max(1);
                    let number = tv.value.as_number().ok_or_else(|| DcsError::NonNumeric {
                        operator: op.name(),
                        value: tv.value.to_string(),
                    })?;
                    numbers.extend(std::iter::repeat_n(number, occurrences));
                }
                numbers
            }
            Denotation::Number(n) => vec![*n],
            Denotation::Records(_) => {
                return Err(DcsError::TypeMismatch {
                    operator: op.name(),
                    expected: "values",
                    found: "records",
                })
            }
        };
        if numbers.is_empty() {
            return Err(DcsError::Cardinality {
                operator: op.name(),
                expected: "a non-empty value set",
                got: 0,
            });
        }
        let result = match op {
            AggregateOp::Max => numbers.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            AggregateOp::Min => numbers.iter().copied().fold(f64::INFINITY, f64::min),
            AggregateOp::Sum => numbers.iter().sum(),
            AggregateOp::Avg => numbers.iter().sum::<f64>() / numbers.len() as f64,
            AggregateOp::Count => unreachable!("count handled above"),
        };
        Ok(Denotation::Number(result))
    }

    /// The best (Ord-extreme) value of `column` among `records`. Walks the
    /// index's value-sorted permutation from the appropriate end when the
    /// record set is dense in the table (first member hit = extreme value);
    /// falls back to the direct scan of the record set when it is sparse or
    /// when the column has no consistent value order (NaN cells).
    fn superlative_best(
        &self,
        op: SuperlativeOp,
        records: &BTreeSet<RecordIdx>,
        column: usize,
    ) -> Option<Value> {
        if records.is_empty() {
            return None;
        }
        if let Some(order) = self.index().value_order(self.table, column) {
            // Expected walk length is |table| / |records|; only walk when the
            // set is dense enough that the walk beats the O(|records|) scan.
            if records.len() * 4 >= order.len() {
                let found = match op {
                    SuperlativeOp::Argmax => order.iter().rev().find(|r| records.contains(r)),
                    SuperlativeOp::Argmin => order.iter().find(|r| records.contains(r)),
                };
                return found.and_then(|&r| self.table.value_at(r, column));
            }
        }
        let mut best: Option<Value> = None;
        for &record in records {
            let Some(value) = self.table.value_at(record, column) else {
                continue;
            };
            let better = match (&best, op) {
                (None, _) => true,
                (Some(current), SuperlativeOp::Argmax) => &value > current,
                (Some(current), SuperlativeOp::Argmin) => &value < current,
            };
            if better {
                best = Some(value);
            }
        }
        best
    }

    fn superlative_records(
        &self,
        op: SuperlativeOp,
        records: &BTreeSet<RecordIdx>,
        column: usize,
    ) -> BTreeSet<RecordIdx> {
        let Some(best) = self.superlative_best(op, records, column) else {
            return BTreeSet::new();
        };
        records
            .iter()
            .copied()
            .filter(|&record| self.table.eq_at(record, column, &best))
            .collect()
    }

    fn eval_most_common(
        &self,
        op: SuperlativeOp,
        values: Denotation,
        column: usize,
    ) -> Result<Denotation> {
        let candidates = match values {
            Denotation::Values(v) => v,
            other => {
                return Err(DcsError::TypeMismatch {
                    operator: "most_common",
                    expected: "values",
                    found: other.kind(),
                })
            }
        };
        if candidates.is_empty() {
            return Ok(Denotation::Values(Vec::new()));
        }
        let counts: Vec<usize> = candidates
            .iter()
            .map(|tv| self.kb.join(column, &tv.value).len())
            .collect();
        let best = match op {
            SuperlativeOp::Argmax => counts.iter().copied().max().unwrap_or(0),
            SuperlativeOp::Argmin => counts.iter().copied().min().unwrap_or(0),
        };
        let out: Vec<TracedValue> = candidates
            .into_iter()
            .zip(counts)
            .filter(|(_, count)| *count == best)
            .map(|(tv, _)| {
                // Trace the winner to its occurrences in the counting column.
                let cells = self.kb.matching_cells(column, &tv.value);
                TracedValue {
                    value: tv.value,
                    cells,
                }
            })
            .collect();
        Ok(Denotation::Values(out))
    }

    fn eval_compare_values(
        &self,
        op: SuperlativeOp,
        values: Denotation,
        key_column: usize,
        value_column: usize,
    ) -> Result<Denotation> {
        let candidates = match values {
            Denotation::Values(v) => v,
            other => {
                return Err(DcsError::TypeMismatch {
                    operator: "compare",
                    expected: "values",
                    found: other.kind(),
                })
            }
        };
        // Rows whose value_column cell is one of the candidate values.
        let mut rows: Vec<RecordIdx> = Vec::new();
        for tv in &candidates {
            rows.extend(self.kb.join(value_column, &tv.value).iter().copied());
        }
        rows.sort_unstable();
        rows.dedup();
        // Best key among those rows.
        let row_set: BTreeSet<RecordIdx> = rows.iter().copied().collect();
        let Some(best) = self.superlative_best(op, &row_set, key_column) else {
            return Ok(Denotation::Values(Vec::new()));
        };
        // Return the candidate values of rows achieving the best key.
        let mut out: Vec<TracedValue> = Vec::new();
        let mut position: HashMap<Value, usize> = HashMap::new();
        for &record in &rows {
            if !self.table.eq_at(record, key_column, &best) {
                continue;
            }
            let Some(value) = self.table.value_at(record, value_column) else {
                continue;
            };
            let cell = CellRef::new(record, value_column);
            if let Some(&at) = position.get(&value) {
                out[at].cells.push(cell);
            } else {
                position.insert(value.clone(), out.len());
                out.push(TracedValue {
                    value,
                    cells: vec![cell],
                });
            }
        }
        Ok(Denotation::Values(out))
    }
}

/// Evaluate `formula` against `table` (convenience wrapper that builds an
/// [`Evaluator`] each call; reuse an `Evaluator` when running many formulas
/// over the same table).
pub fn eval(formula: &Formula, table: &Table) -> Result<Denotation> {
    Evaluator::new(table).eval(formula)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AggregateOp, CompareOp, Formula, SuperlativeOp};
    use wtq_table::samples;

    fn values_of(denotation: &Denotation) -> Vec<String> {
        denotation.values().iter().map(|v| v.to_string()).collect()
    }

    #[test]
    fn join_selects_records() {
        // Country.Greece over the Figure 1 table.
        let table = samples::olympics();
        let q = Formula::join_str("Country", "Greece");
        let d = eval(&q, &table).unwrap();
        assert_eq!(
            d.records().unwrap().iter().copied().collect::<Vec<_>>(),
            vec![0, 5]
        );
    }

    #[test]
    fn column_values_projects() {
        // R[Year].Country.Greece -> {1896, 2004}
        let table = samples::olympics();
        let q = Formula::column_values("Year", Formula::join_str("Country", "Greece"));
        let d = eval(&q, &table).unwrap();
        assert_eq!(values_of(&d), vec!["1896", "2004"]);
        assert_eq!(d.traced_cells().len(), 2);
    }

    #[test]
    fn figure_one_query_returns_2004() {
        // max(R[Year].Country.Greece) = 2004
        let table = samples::olympics();
        let q = Formula::aggregate(
            AggregateOp::Max,
            Formula::column_values("Year", Formula::join_str("Country", "Greece")),
        );
        assert_eq!(eval(&q, &table).unwrap(), Denotation::Number(2004.0));
    }

    #[test]
    fn example_3_1_city_of_earliest_olympics() {
        // R[City].argmin(Rows, Year) = Athens
        let table = samples::olympics();
        let q = Formula::column_values(
            "City",
            Formula::SuperlativeRecords {
                op: SuperlativeOp::Argmin,
                records: Box::new(Formula::AllRecords),
                column: "Year".into(),
            },
        );
        assert_eq!(values_of(&eval(&q, &table).unwrap()), vec!["Athens"]);
    }

    #[test]
    fn count_aggregate_counts_records() {
        // count(City.Athens) = 2
        let table = samples::olympics();
        let q = Formula::aggregate(AggregateOp::Count, Formula::join_str("City", "Athens"));
        assert_eq!(eval(&q, &table).unwrap(), Denotation::Number(2.0));
    }

    #[test]
    fn example_5_2_difference_of_totals() {
        // sub(R[Total].Nation.Fiji, R[Total].Nation.Tonga) = 110
        let table = samples::medals();
        let q = Formula::Sub(
            Box::new(Formula::column_values(
                "Total",
                Formula::join_str("Nation", "Fiji"),
            )),
            Box::new(Formula::column_values(
                "Total",
                Formula::join_str("Nation", "Tonga"),
            )),
        );
        assert_eq!(eval(&q, &table).unwrap(), Denotation::Number(110.0));
    }

    #[test]
    fn intersection_of_records() {
        // City.London ⊓ Country.UK
        let table = samples::olympics();
        let q = Formula::Intersect(
            Box::new(Formula::join_str("City", "London")),
            Box::new(Formula::join_str("Country", "UK")),
        );
        let d = eval(&q, &table).unwrap();
        assert_eq!(d.records().unwrap().len(), 2);
    }

    #[test]
    fn union_of_values() {
        // R[City].(Country.Greece or Country.China)
        let table = samples::olympics();
        let q = Formula::column_values(
            "City",
            Formula::Union(
                Box::new(Formula::join_str("Country", "Greece")),
                Box::new(Formula::join_str("Country", "China")),
            ),
        );
        assert_eq!(
            values_of(&eval(&q, &table).unwrap()),
            vec!["Athens", "Beijing"]
        );
    }

    #[test]
    fn prev_and_next_shift_records() {
        let table = samples::olympics();
        // Values of City right above rows where City is London (Table 14).
        let q = Formula::column_values(
            "City",
            Formula::Prev(Box::new(Formula::join_str("City", "London"))),
        );
        let d = eval(&q, &table).unwrap();
        assert_eq!(values_of(&d), vec!["St. Louis", "Beijing"]);
        // Values of City right below rows where City is Athens (Table 15).
        let q = Formula::column_values(
            "City",
            Formula::Next(Box::new(Formula::join_str("City", "Athens"))),
        );
        let d = eval(&q, &table).unwrap();
        assert_eq!(values_of(&d), vec!["Paris", "Beijing"]);
    }

    #[test]
    fn prev_of_first_record_is_empty() {
        let table = samples::olympics();
        let q = Formula::Prev(Box::new(Formula::join_str("Year", "1896")));
        assert!(eval(&q, &table).unwrap().is_empty());
    }

    #[test]
    fn compare_join_matches_figure_4() {
        // rows where Games > 4 in the squad table: Andy Egli (6), Heinz
        // Hermann (6), Roger Wehrli (6), Lucien Favre (5).
        let table = samples::squad();
        let q = Formula::CompareJoin {
            column: "Games".into(),
            op: CompareOp::Gt,
            value: Box::new(Formula::Const(Value::num(4.0))),
        };
        let d = eval(&q, &table).unwrap();
        assert_eq!(d.records().unwrap().len(), 4);
    }

    #[test]
    fn compare_join_equivalent_range_formulation() {
        // "at least 5 and also less than 17" denotes the same rows (see §5.2).
        let table = samples::squad();
        let q = Formula::Intersect(
            Box::new(Formula::CompareJoin {
                column: "Games".into(),
                op: CompareOp::Geq,
                value: Box::new(Formula::Const(Value::num(5.0))),
            }),
            Box::new(Formula::CompareJoin {
                column: "Games".into(),
                op: CompareOp::Lt,
                value: Box::new(Formula::Const(Value::num(17.0))),
            }),
        );
        let gt4 = Formula::CompareJoin {
            column: "Games".into(),
            op: CompareOp::Gt,
            value: Box::new(Formula::Const(Value::num(4.0))),
        };
        assert_eq!(eval(&q, &table).unwrap(), eval(&gt4, &table).unwrap());
    }

    #[test]
    fn record_index_superlative_selects_last_row() {
        // "last year the team was in the USL A-League" = 2004 (Figure 8).
        let table = samples::usl_league();
        let q = Formula::column_values(
            "Year",
            Formula::RecordIndexSuperlative {
                op: SuperlativeOp::Argmax,
                records: Box::new(Formula::join_str("League", "USL A-League")),
            },
        );
        assert_eq!(values_of(&eval(&q, &table).unwrap()), vec!["2004"]);
    }

    #[test]
    fn most_common_value() {
        // The value among {Athens, London} appearing most often in City.
        let table = samples::olympics();
        let q = Formula::MostCommonValue {
            op: SuperlativeOp::Argmax,
            values: Box::new(Formula::Union(
                Box::new(Formula::Const(Value::str("Athens"))),
                Box::new(Formula::Const(Value::str("London"))),
            )),
            column: "City".into(),
        };
        let d = eval(&q, &table).unwrap();
        // Athens and London both appear twice -> tie keeps both.
        assert_eq!(values_of(&d), vec!["Athens", "London"]);
    }

    #[test]
    fn most_common_value_over_whole_column() {
        // Table 22: the value that appears the most in column Lake.
        let table = samples::shipwrecks();
        let q = Formula::MostCommonValue {
            op: SuperlativeOp::Argmax,
            values: Box::new(Formula::column_values("Lake", Formula::AllRecords)),
            column: "Lake".into(),
        };
        assert_eq!(values_of(&eval(&q, &table).unwrap()), vec!["Lake Huron"]);
    }

    #[test]
    fn compare_values_figure_5() {
        // between London or Beijing, who has the highest value of Year.
        let table = samples::olympics();
        let q = Formula::CompareValues {
            op: SuperlativeOp::Argmax,
            values: Box::new(Formula::Union(
                Box::new(Formula::Const(Value::str("London"))),
                Box::new(Formula::Const(Value::str("Beijing"))),
            )),
            key_column: "Year".into(),
            value_column: "City".into(),
        };
        assert_eq!(values_of(&eval(&q, &table).unwrap()), vec!["London"]);
    }

    #[test]
    fn difference_of_occurrences() {
        // Figure 9 / Table 18 pattern: count(Lake."Lake Huron") - count(Lake."Lake Erie").
        let table = samples::shipwrecks();
        let q = Formula::Sub(
            Box::new(Formula::aggregate(
                AggregateOp::Count,
                Formula::join_str("Lake", "Lake Huron"),
            )),
            Box::new(Formula::aggregate(
                AggregateOp::Count,
                Formula::join_str("Lake", "Lake Erie"),
            )),
        );
        assert_eq!(eval(&q, &table).unwrap(), Denotation::Number(3.0));
    }

    #[test]
    fn sum_and_avg_aggregate() {
        let table = samples::medals();
        let q = Formula::aggregate(
            AggregateOp::Sum,
            Formula::column_values("Gold", Formula::AllRecords),
        );
        assert_eq!(eval(&q, &table).unwrap(), Denotation::Number(298.0));
        let q = Formula::aggregate(
            AggregateOp::Avg,
            Formula::column_values("Total", Formula::join_str("Nation", "Fiji")),
        );
        assert_eq!(eval(&q, &table).unwrap(), Denotation::Number(130.0));
    }

    #[test]
    fn sum_counts_repeated_values_once_per_cell() {
        // Two records share Games = 6 twice; summing Games over DF+MF rows
        // must count each cell, not each distinct value.
        let table = samples::squad();
        let q = Formula::aggregate(
            AggregateOp::Sum,
            Formula::column_values("Games", Formula::AllRecords),
        );
        assert_eq!(eval(&q, &table).unwrap(), Denotation::Number(38.0));
    }

    #[test]
    fn aggregate_over_strings_is_an_error() {
        let table = samples::olympics();
        let q = Formula::aggregate(
            AggregateOp::Sum,
            Formula::column_values("City", Formula::AllRecords),
        );
        assert!(matches!(eval(&q, &table), Err(DcsError::NonNumeric { .. })));
    }

    #[test]
    fn unknown_column_is_an_error() {
        let table = samples::olympics();
        let q = Formula::join_str("Continent", "Europe");
        assert_eq!(
            eval(&q, &table).unwrap_err(),
            DcsError::UnknownColumn("Continent".into())
        );
    }

    #[test]
    fn sub_requires_single_values() {
        let table = samples::olympics();
        // R[Year].Country.Greece denotes two values -> not a single number.
        let q = Formula::Sub(
            Box::new(Formula::column_values(
                "Year",
                Formula::join_str("Country", "Greece"),
            )),
            Box::new(Formula::Const(Value::num(1.0))),
        );
        assert!(matches!(
            eval(&q, &table),
            Err(DcsError::Cardinality { .. })
        ));
    }

    #[test]
    fn type_mismatches_are_reported() {
        let table = samples::olympics();
        // Aggregating records with max.
        let q = Formula::aggregate(AggregateOp::Max, Formula::AllRecords);
        assert!(matches!(
            eval(&q, &table),
            Err(DcsError::TypeMismatch { .. })
        ));
        // Intersecting a number with records.
        let q = Formula::Intersect(
            Box::new(Formula::aggregate(AggregateOp::Count, Formula::AllRecords)),
            Box::new(Formula::AllRecords),
        );
        assert!(matches!(
            eval(&q, &table),
            Err(DcsError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn empty_superlative_is_empty_not_error() {
        let table = samples::olympics();
        let q = Formula::SuperlativeRecords {
            op: SuperlativeOp::Argmax,
            records: Box::new(Formula::join_str("Country", "Atlantis")),
            column: "Year".into(),
        };
        assert!(eval(&q, &table).unwrap().is_empty());
    }

    #[test]
    fn superlative_keeps_ties() {
        let table = samples::squad();
        let q = Formula::SuperlativeRecords {
            op: SuperlativeOp::Argmax,
            records: Box::new(Formula::AllRecords),
            column: "Games".into(),
        };
        // Three players played 6 games.
        assert_eq!(eval(&q, &table).unwrap().records().unwrap().len(), 3);
    }

    #[test]
    fn max_eval_depth_guard() {
        let table = samples::olympics();
        let mut q = Formula::join_str("Country", "Greece");
        for _ in 0..(MAX_EVAL_DEPTH + 2) {
            q = Formula::Prev(Box::new(q));
        }
        assert!(matches!(eval(&q, &table), Err(DcsError::DepthExceeded(_))));
    }

    #[test]
    fn cache_hit_does_not_mask_depth_guard() {
        // The shallow branch caches B; the deep branch reaches B at a depth
        // where a fresh recursion would exceed MAX_EVAL_DEPTH. The cache hit
        // must report the same DepthExceeded the scan reference does.
        let table = samples::olympics();
        let mut b = Formula::join_str("Country", "Greece");
        for _ in 0..10 {
            b = Formula::Prev(Box::new(b));
        }
        let mut deep = b.clone();
        for _ in 0..(MAX_EVAL_DEPTH - 4) {
            deep = Formula::Prev(Box::new(deep));
        }
        let q = Formula::Intersect(Box::new(b), Box::new(deep));
        let session = Evaluator::new(&table);
        assert_eq!(
            session.eval(&q),
            crate::reference::eval_reference(&q, &table)
        );
        assert!(matches!(session.eval(&q), Err(DcsError::DepthExceeded(_))));
    }

    #[test]
    fn session_caches_shared_record_bases() {
        let table = samples::olympics();
        let evaluator = Evaluator::new(&table);
        let base = Formula::join_str("Country", "Greece");
        let first = evaluator
            .eval(&Formula::column_values("Year", base.clone()))
            .unwrap();
        let (hits, misses) = evaluator.cache_stats();
        assert_eq!((hits, misses), (0, 1));
        // Re-using the base inside a different composite hits the cache.
        let second = evaluator
            .eval(&Formula::aggregate(
                AggregateOp::Max,
                Formula::column_values("Year", base.clone()),
            ))
            .unwrap();
        let (hits, _) = evaluator.cache_stats();
        assert_eq!(hits, 1);
        assert_eq!(first.values(), {
            let Denotation::Number(n) = second else {
                panic!("expected a number")
            };
            assert_eq!(n, 2004.0);
            evaluator
                .eval(&Formula::column_values("Year", base))
                .unwrap()
                .values()
        });
    }

    #[test]
    fn cached_and_fresh_sessions_agree() {
        let table = samples::shipwrecks();
        let session = Evaluator::new(&table);
        let q = Formula::MostCommonValue {
            op: SuperlativeOp::Argmax,
            values: Box::new(Formula::column_values("Lake", Formula::AllRecords)),
            column: "Lake".into(),
        };
        let warm = session.eval(&q).unwrap();
        let warm_again = session.eval(&q).unwrap();
        assert_eq!(warm, warm_again);
        assert_eq!(warm, eval(&q, &table).unwrap());
    }

    #[test]
    fn compare_records_matches_compare_semantics() {
        let table = samples::squad();
        let evaluator = Evaluator::new(&table);
        let games = table.column_index("Games").unwrap();
        for op in [
            CompareOp::Lt,
            CompareOp::Leq,
            CompareOp::Gt,
            CompareOp::Geq,
            CompareOp::Neq,
        ] {
            for threshold in [-1.0, 0.0, 4.0, 6.0, 17.0, f64::NAN] {
                let indexed = compare_records(evaluator.index(), games, op, threshold);
                let scanned: BTreeSet<RecordIdx> = table
                    .record_indices()
                    .filter(|&r| {
                        table
                            .value_at(r, games)
                            .and_then(|v| v.as_number())
                            .map(|n| op.compare(n, threshold))
                            .unwrap_or(false)
                    })
                    .collect();
                assert_eq!(indexed, scanned, "op {op:?} threshold {threshold}");
            }
        }
    }
}
