//! # wtq-dcs
//!
//! Lambda DCS (lambda dependency-based compositional semantics) over web
//! tables, as used by *Explaining Queries over Web Tables to Non-Experts*
//! (Berant et al., ICDE 2019, §3.2 and Table 10).
//!
//! Lambda DCS is a set-oriented query language: a formula executed against a
//! table denotes either a set of values (strings, numbers, dates), a set of
//! table records, or a single number produced by an aggregate / arithmetic
//! operation. The language is compositional — complex questions are expressed
//! by nesting a small catalogue of operators (join, reverse join, prev/next,
//! intersection, union, aggregation, superlatives, arithmetic difference,
//! comparisons).
//!
//! This crate provides:
//!
//! * [`Formula`] — the abstract syntax tree, covering every operator of the
//!   paper's Table 10,
//! * [`parse_formula`] — a concrete textual syntax (`R[Year].Country.Greece`,
//!   `max(...)`, `sub(...)`, …) with a round-trippable [`Display`]
//!   implementation,
//! * [`eval`] — the index-backed execution engine producing [`Denotation`]s
//!   with cell-level tracking (the raw material of the provenance model);
//!   [`Evaluator`] is a stateful per-table session that memoizes
//!   record-denoting subformulas across a candidate pool,
//! * [`reference`] — the scan-based reference semantics the indexed engine
//!   is differentially tested against,
//! * [`typecheck`] — static classification of formulas into record-denoting /
//!   value-denoting / numeric, used by the semantic parser's candidate
//!   generation,
//! * [`Answer`] — canonicalized query results used to compare a candidate
//!   query's output against a gold answer (the `r(z|T, y)` indicator of §6.2).
//!
//! [`Display`]: std::fmt::Display

pub mod answer;
pub mod ast;
pub mod error;
pub mod eval;
pub mod parse;
pub mod reference;
pub mod typecheck;

pub use answer::Answer;
pub use ast::{AggregateOp, CompareOp, Formula, SuperlativeOp};
pub use error::DcsError;
pub use eval::{compare_records, eval, Denotation, Evaluator, TracedValue};
pub use parse::parse_formula;
pub use reference::eval_reference;
pub use typecheck::{typecheck, FormulaType};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, DcsError>;
