//! Concrete textual syntax for lambda DCS formulas.
//!
//! The syntax follows the paper's notation as closely as plain ASCII allows:
//!
//! ```text
//! Country.Greece                      join ("Column Records")
//! R[Year].Country.Greece              reverse join ("Column Values")
//! Prev.City.Athens                    preceding records
//! R[Prev].City.Athens                 following records
//! (City.London and Country.UK)        intersection (⊓)
//! (Greece or China)                   union (⊔)
//! max(R[Year].Country.Greece)         aggregation (count, max, min, sum, avg)
//! sub(count(City.Athens), count(City.Paris))   arithmetic difference
//! argmax(Rows, Year)                  records with highest value in a column
//! last(League."USL A-League")         record with highest Index (first(...) for lowest)
//! most_common(R[City].Rows, City)     value with most appearances
//! compare_max((London or Beijing), Year, City)  comparing values by a key column
//! Games.(> 4)                         comparison join
//! League."USL A-League"               quoted names for multi-word values / columns
//! date(2013, 6, 8)                    date literals
//! ```
//!
//! [`crate::Formula`]'s `Display` implementation emits exactly this syntax,
//! so `parse_formula(&formula.to_string())` round-trips (verified by property
//! tests).

use wtq_table::Value;

use crate::ast::{AggregateOp, CompareOp, Formula, SuperlativeOp};
use crate::error::DcsError;
use crate::Result;

/// Parse a formula from its textual form.
pub fn parse_formula(text: &str) -> Result<Formula> {
    let tokens = tokenize(text)?;
    let mut parser = Parser {
        tokens,
        position: 0,
    };
    let formula = parser.parse_or()?;
    parser.expect_end()?;
    Ok(formula)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Quoted(String),
    Number(f64),
    Dot,
    Comma,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Compare(CompareOp),
}

#[derive(Debug, Clone)]
struct SpannedToken {
    token: Token,
    offset: usize,
}

fn tokenize(text: &str) -> Result<Vec<SpannedToken>> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '.' => {
                tokens.push(SpannedToken {
                    token: Token::Dot,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(SpannedToken {
                    token: Token::Comma,
                    offset: start,
                });
                i += 1;
            }
            '(' => {
                tokens.push(SpannedToken {
                    token: Token::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(SpannedToken {
                    token: Token::RParen,
                    offset: start,
                });
                i += 1;
            }
            '[' => {
                tokens.push(SpannedToken {
                    token: Token::LBracket,
                    offset: start,
                });
                i += 1;
            }
            ']' => {
                tokens.push(SpannedToken {
                    token: Token::RBracket,
                    offset: start,
                });
                i += 1;
            }
            '>' | '<' | '!' => {
                let op = if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    i += 2;
                    match c {
                        '>' => CompareOp::Geq,
                        '<' => CompareOp::Leq,
                        _ => CompareOp::Neq,
                    }
                } else {
                    i += 1;
                    match c {
                        '>' => CompareOp::Gt,
                        '<' => CompareOp::Lt,
                        _ => {
                            return Err(DcsError::Parse {
                                message: "'!' must be followed by '='".into(),
                                position: start,
                            })
                        }
                    }
                };
                tokens.push(SpannedToken {
                    token: Token::Compare(op),
                    offset: start,
                });
            }
            '"' => {
                let mut value = String::new();
                i += 1;
                let mut closed = false;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch == '\\' && i + 1 < bytes.len() && bytes[i + 1] as char == '"' {
                        value.push('"');
                        i += 2;
                    } else if ch == '"' {
                        closed = true;
                        i += 1;
                        break;
                    } else {
                        value.push(ch);
                        i += 1;
                    }
                }
                if !closed {
                    return Err(DcsError::Parse {
                        message: "unterminated string literal".into(),
                        position: start,
                    });
                }
                tokens.push(SpannedToken {
                    token: Token::Quoted(value),
                    offset: start,
                });
            }
            _ if c.is_ascii_digit() || c == '-' => {
                let mut end = i + 1;
                while end < bytes.len()
                    && ((bytes[end] as char).is_ascii_digit() || bytes[end] as char == '.')
                {
                    // A trailing '.' followed by a non-digit belongs to a join,
                    // not to the number (e.g. `2004.City`): stop before it.
                    if bytes[end] as char == '.'
                        && (end + 1 >= bytes.len() || !(bytes[end + 1] as char).is_ascii_digit())
                    {
                        break;
                    }
                    end += 1;
                }
                let literal = &text[i..end];
                let number = literal.parse::<f64>().map_err(|_| DcsError::Parse {
                    message: format!("invalid number literal {literal:?}"),
                    position: start,
                })?;
                tokens.push(SpannedToken {
                    token: Token::Number(number),
                    offset: start,
                });
                i = end;
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i + 1;
                while end < bytes.len() {
                    let ch = bytes[end] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' || ch == '-' {
                        end += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(SpannedToken {
                    token: Token::Ident(text[i..end].to_string()),
                    offset: start,
                });
                i = end;
            }
            other => {
                return Err(DcsError::Parse {
                    message: format!("unexpected character {other:?}"),
                    position: start,
                })
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    position: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.position).map(|t| &t.token)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.position)
            .map(|t| t.offset)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.offset + 1).unwrap_or(0))
    }

    fn advance(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.position).map(|t| t.token.clone());
        if token.is_some() {
            self.position += 1;
        }
        token
    }

    fn error(&self, message: impl Into<String>) -> DcsError {
        DcsError::Parse {
            message: message.into(),
            position: self.offset(),
        }
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<()> {
        match self.peek() {
            Some(token) if token == expected => {
                self.advance();
                Ok(())
            }
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.position == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error("unexpected trailing input"))
        }
    }

    /// or_expr := and_expr ("or" and_expr)*
    fn parse_or(&mut self) -> Result<Formula> {
        let mut left = self.parse_and()?;
        while matches!(self.peek(), Some(Token::Ident(word)) if word.eq_ignore_ascii_case("or")) {
            self.advance();
            let right = self.parse_and()?;
            left = Formula::Union(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    /// and_expr := primary ("and" primary)*
    fn parse_and(&mut self) -> Result<Formula> {
        let mut left = self.parse_primary()?;
        while matches!(self.peek(), Some(Token::Ident(word)) if word.eq_ignore_ascii_case("and")) {
            self.advance();
            let right = self.parse_primary()?;
            left = Formula::Intersect(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_primary(&mut self) -> Result<Formula> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.advance();
                let inner = self.parse_or()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(inner)
            }
            Some(Token::Number(n)) => {
                self.advance();
                Ok(Formula::Const(Value::Num(n)))
            }
            Some(Token::Quoted(name)) => {
                self.advance();
                self.maybe_join(name)
            }
            Some(Token::Ident(word)) => {
                self.advance();
                self.parse_after_ident(word)
            }
            other => Err(self.error(format!("expected a formula, found {other:?}"))),
        }
    }

    /// Handle an identifier head: keyword formulas, function calls, reverse
    /// joins, plain joins or bare constants.
    fn parse_after_ident(&mut self, word: String) -> Result<Formula> {
        let lower = word.to_ascii_lowercase();
        // Keyword atoms.
        if lower == "rows" || lower == "record" || lower == "records" {
            return Ok(Formula::AllRecords);
        }
        // Reverse join R[...] or the R[Prev] shorthand.
        if lower == "r" && self.peek() == Some(&Token::LBracket) {
            self.advance();
            let column = self.parse_name("column name inside R[...]")?;
            self.expect(&Token::RBracket, "']'")?;
            self.expect(&Token::Dot, "'.' after R[...]")?;
            let records = self.parse_primary()?;
            if column.eq_ignore_ascii_case("prev") {
                return Ok(Formula::Next(Box::new(records)));
            }
            return Ok(Formula::ColumnValues {
                column,
                records: Box::new(records),
            });
        }
        // Prev.<records>
        if lower == "prev" && self.peek() == Some(&Token::Dot) {
            self.advance();
            let records = self.parse_primary()?;
            return Ok(Formula::Prev(Box::new(records)));
        }
        // Function calls.
        if self.peek() == Some(&Token::LParen) {
            if let Some(formula) = self.parse_function_call(&lower)? {
                return Ok(formula);
            }
        }
        // Plain join (`Column.values`) or bare constant.
        self.maybe_join(word)
    }

    /// After a name, a '.' introduces a join with that name as the column;
    /// otherwise the name is a constant value.
    fn maybe_join(&mut self, name: String) -> Result<Formula> {
        if self.peek() != Some(&Token::Dot) {
            return Ok(Formula::Const(Value::parse(&name)));
        }
        self.advance();
        // Comparison join: Column.(> 4)
        if self.peek() == Some(&Token::LParen) {
            if let Some(Token::Compare(op)) = self.tokens.get(self.position + 1).map(|t| &t.token) {
                let op = *op;
                self.advance(); // (
                self.advance(); // compare op
                let value = self.parse_primary()?;
                self.expect(&Token::RParen, "')'")?;
                return Ok(Formula::CompareJoin {
                    column: name,
                    op,
                    value: Box::new(value),
                });
            }
        }
        let values = self.parse_primary()?;
        Ok(Formula::Join {
            column: name,
            values: Box::new(values),
        })
    }

    /// A column or value name: an identifier, a quoted string, or `Index`.
    fn parse_name(&mut self, what: &str) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(name)) => Ok(name),
            Some(Token::Quoted(name)) => Ok(name),
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    /// Parse `name(args...)` for the known function names. Returns `Ok(None)`
    /// if `name` is not a function (caller falls back to join/constant).
    fn parse_function_call(&mut self, name: &str) -> Result<Option<Formula>> {
        let aggregate = match name {
            "count" => Some(AggregateOp::Count),
            "max" => Some(AggregateOp::Max),
            "min" => Some(AggregateOp::Min),
            "sum" => Some(AggregateOp::Sum),
            "avg" | "average" => Some(AggregateOp::Avg),
            _ => None,
        };
        if let Some(op) = aggregate {
            self.expect(&Token::LParen, "'('")?;
            let sub = self.parse_or()?;
            self.expect(&Token::RParen, "')'")?;
            return Ok(Some(Formula::Aggregate {
                op,
                sub: Box::new(sub),
            }));
        }
        let formula = match name {
            "sub" | "difference" => {
                self.expect(&Token::LParen, "'('")?;
                let left = self.parse_or()?;
                self.expect(&Token::Comma, "','")?;
                let right = self.parse_or()?;
                self.expect(&Token::RParen, "')'")?;
                Formula::Sub(Box::new(left), Box::new(right))
            }
            "argmax" | "argmin" => {
                let op = if name == "argmax" {
                    SuperlativeOp::Argmax
                } else {
                    SuperlativeOp::Argmin
                };
                self.expect(&Token::LParen, "'('")?;
                let records = self.parse_or()?;
                self.expect(&Token::Comma, "','")?;
                let key = self.parse_name("a column name or Index")?;
                self.expect(&Token::RParen, "')'")?;
                if key.eq_ignore_ascii_case("index") {
                    Formula::RecordIndexSuperlative {
                        op,
                        records: Box::new(records),
                    }
                } else {
                    Formula::SuperlativeRecords {
                        op,
                        records: Box::new(records),
                        column: key,
                    }
                }
            }
            "last" | "first" => {
                let op = if name == "last" {
                    SuperlativeOp::Argmax
                } else {
                    SuperlativeOp::Argmin
                };
                self.expect(&Token::LParen, "'('")?;
                let records = self.parse_or()?;
                self.expect(&Token::RParen, "')'")?;
                Formula::RecordIndexSuperlative {
                    op,
                    records: Box::new(records),
                }
            }
            "most_common" | "least_common" => {
                let op = if name == "most_common" {
                    SuperlativeOp::Argmax
                } else {
                    SuperlativeOp::Argmin
                };
                self.expect(&Token::LParen, "'('")?;
                let values = self.parse_or()?;
                self.expect(&Token::Comma, "','")?;
                let column = self.parse_name("a column name")?;
                self.expect(&Token::RParen, "')'")?;
                Formula::MostCommonValue {
                    op,
                    values: Box::new(values),
                    column,
                }
            }
            "compare_max" | "compare_min" => {
                let op = if name == "compare_max" {
                    SuperlativeOp::Argmax
                } else {
                    SuperlativeOp::Argmin
                };
                self.expect(&Token::LParen, "'('")?;
                let values = self.parse_or()?;
                self.expect(&Token::Comma, "','")?;
                let key_column = self.parse_name("a key column name")?;
                self.expect(&Token::Comma, "','")?;
                let value_column = self.parse_name("a value column name")?;
                self.expect(&Token::RParen, "')'")?;
                Formula::CompareValues {
                    op,
                    values: Box::new(values),
                    key_column,
                    value_column,
                }
            }
            "date" => {
                self.expect(&Token::LParen, "'('")?;
                let mut parts = vec![self.parse_number("a year")?];
                while self.peek() == Some(&Token::Comma) {
                    self.advance();
                    parts.push(self.parse_number("a month or day")?);
                }
                self.expect(&Token::RParen, "')'")?;
                let value = match parts.as_slice() {
                    [y] => Value::year(*y as i32),
                    [y, m] => Value::Date(wtq_table::Date {
                        year: *y as i32,
                        month: Some(*m as u8),
                        day: None,
                    }),
                    [y, m, d] => Value::date(*y as i32, *m as u8, *d as u8),
                    _ => return Err(self.error("date(...) takes between one and three arguments")),
                };
                Formula::Const(value)
            }
            _ => return Ok(None),
        };
        Ok(Some(formula))
    }

    fn parse_number(&mut self, what: &str) -> Result<f64> {
        match self.advance() {
            Some(Token::Number(n)) => Ok(n),
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Formula;

    fn roundtrip(text: &str) -> Formula {
        let formula = parse_formula(text).unwrap_or_else(|e| panic!("parse {text:?}: {e}"));
        let redisplayed = formula.to_string();
        let reparsed =
            parse_formula(&redisplayed).unwrap_or_else(|e| panic!("reparse {redisplayed:?}: {e}"));
        assert_eq!(
            formula, reparsed,
            "round trip changed the formula for {text:?}"
        );
        formula
    }

    #[test]
    fn parses_paper_examples() {
        roundtrip("Country.Greece");
        roundtrip("R[Year].Country.Greece");
        roundtrip("max(R[Year].Country.Greece)");
        roundtrip("count(City.Athens)");
        roundtrip("R[City].argmin(Rows, Year)");
        roundtrip("sub(R[Total].Nation.Fiji, R[Total].Nation.Tonga)");
        roundtrip("sub(count(City.Athens), count(City.London))");
        roundtrip("(City.London and Country.UK)");
        roundtrip("(Country.Greece or Country.China)");
        roundtrip("R[Year].Prev.City.Athens");
        roundtrip("R[Year].R[Prev].City.Athens");
        roundtrip("last(League.\"USL A-League\")");
        roundtrip("most_common((Athens or London), City)");
        roundtrip("compare_max((London or Beijing), Year, City)");
        roundtrip("Games.(> 4)");
        roundtrip("date(2013, 6, 8)");
    }

    #[test]
    fn join_with_quoted_multiword_value() {
        let f = roundtrip("League.\"USL A-League\"");
        assert_eq!(f, Formula::join_str("League", "USL A-League"));
    }

    #[test]
    fn quoted_column_names() {
        let f = roundtrip("R[\"Growth Rate\"].Country.Madagascar");
        match f {
            Formula::ColumnValues { column, .. } => assert_eq!(column, "Growth Rate"),
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn numbers_and_negative_numbers() {
        assert_eq!(roundtrip("Year.2004"), Formula::join_str("Year", "2004"));
        assert!(matches!(roundtrip("-17"), Formula::Const(Value::Num(n)) if n == -17.0));
        assert!(
            matches!(roundtrip("2.945"), Formula::Const(Value::Num(n)) if (n - 2.945).abs() < 1e-12)
        );
    }

    #[test]
    fn argmax_with_index_keyword_becomes_record_index_superlative() {
        let f = roundtrip("argmax(League.\"USL A-League\", Index)");
        assert!(matches!(
            f,
            Formula::RecordIndexSuperlative {
                op: SuperlativeOp::Argmax,
                ..
            }
        ));
        let g = roundtrip("argmin(Rows, Year)");
        assert!(matches!(
            g,
            Formula::SuperlativeRecords {
                op: SuperlativeOp::Argmin,
                ..
            }
        ));
    }

    #[test]
    fn nested_composition() {
        let f =
            roundtrip("count(argmax((Lake.\"Lake Huron\" and Vessel.Steamer), \"Lives lost\"))");
        assert_eq!(f.depth(), 5);
    }

    #[test]
    fn comparison_operators() {
        for (text, op) in [
            ("Games.(> 4)", CompareOp::Gt),
            ("Games.(>= 5)", CompareOp::Geq),
            ("Games.(< 17)", CompareOp::Lt),
            ("Games.(<= 17)", CompareOp::Leq),
            ("Games.(!= 3)", CompareOp::Neq),
        ] {
            match roundtrip(text) {
                Formula::CompareJoin { op: parsed, .. } => assert_eq!(parsed, op),
                other => panic!("unexpected parse for {text}: {other:?}"),
            }
        }
    }

    #[test]
    fn whitespace_is_insignificant() {
        let a = parse_formula("max( R[Year] . Country . Greece )").unwrap();
        let b = parse_formula("max(R[Year].Country.Greece)").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_errors_carry_positions() {
        match parse_formula("max(R[Year].Country.Greece") {
            Err(DcsError::Parse { position, .. }) => assert!(position >= 20),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse_formula("").is_err());
        assert!(parse_formula("Country.").is_err());
        assert!(parse_formula("\"unterminated").is_err());
        assert!(parse_formula("Games.(! 4)").is_err());
        assert!(parse_formula("max(Rows) trailing").is_err());
        assert!(parse_formula("date(2013, 6, 8, 1)").is_err());
    }

    #[test]
    fn union_and_intersection_precedence() {
        // and binds tighter than or.
        let f = parse_formula("City.Athens or City.London and Country.UK").unwrap();
        match f {
            Formula::Union(_, right) => {
                assert!(matches!(*right, Formula::Intersect(_, _)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn keyword_atoms() {
        assert_eq!(parse_formula("Rows").unwrap(), Formula::AllRecords);
        assert_eq!(parse_formula("Record").unwrap(), Formula::AllRecords);
    }
}
