//! The lambda DCS abstract syntax tree.
//!
//! Each variant corresponds to one operator of the paper's Table 10 (plus the
//! comparison joins that appear in Figure 4 and in Table 3's "is at most"
//! grammar rule). Formulas are compositional: record-denoting formulas nest
//! inside value-denoting formulas, which nest inside aggregates and
//! arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

use wtq_table::Value;

/// Aggregate functions over a value set (`aggrs` in §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AggregateOp {
    /// Number of elements in the set (applies to values or records).
    Count,
    /// Largest numeric value.
    Max,
    /// Smallest numeric value.
    Min,
    /// Sum of numeric values.
    Sum,
    /// Arithmetic mean of numeric values.
    Avg,
}

impl AggregateOp {
    /// Lower-case operator name as it appears in the concrete syntax.
    pub fn name(self) -> &'static str {
        match self {
            AggregateOp::Count => "count",
            AggregateOp::Max => "max",
            AggregateOp::Min => "min",
            AggregateOp::Sum => "sum",
            AggregateOp::Avg => "avg",
        }
    }

    /// All aggregate operators, in a stable order.
    pub fn all() -> [AggregateOp; 5] {
        [
            AggregateOp::Count,
            AggregateOp::Max,
            AggregateOp::Min,
            AggregateOp::Sum,
            AggregateOp::Avg,
        ]
    }
}

impl fmt::Display for AggregateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Superlative direction (`argmax` / `argmin`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SuperlativeOp {
    /// Select the element(s) with the largest key.
    Argmax,
    /// Select the element(s) with the smallest key.
    Argmin,
}

impl SuperlativeOp {
    /// Operator name in the concrete syntax.
    pub fn name(self) -> &'static str {
        match self {
            SuperlativeOp::Argmax => "argmax",
            SuperlativeOp::Argmin => "argmin",
        }
    }
}

impl fmt::Display for SuperlativeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Comparison operators used by comparison joins (`Games.(> 4)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CompareOp {
    /// Strictly less than.
    Lt,
    /// Less than or equal ("is at most").
    Leq,
    /// Strictly greater than ("more than").
    Gt,
    /// Greater than or equal ("at least").
    Geq,
    /// Not equal.
    Neq,
}

impl CompareOp {
    /// Symbolic form used by the concrete syntax and the SQL translation.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Lt => "<",
            CompareOp::Leq => "<=",
            CompareOp::Gt => ">",
            CompareOp::Geq => ">=",
            CompareOp::Neq => "!=",
        }
    }

    /// Apply the comparison to two numbers.
    pub fn compare(self, left: f64, right: f64) -> bool {
        match self {
            CompareOp::Lt => left < right,
            CompareOp::Leq => left <= right,
            CompareOp::Gt => left > right,
            CompareOp::Geq => left >= right,
            CompareOp::Neq => (left - right).abs() > f64::EPSILON,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// A lambda DCS formula.
///
/// The correspondence to the paper's Table 10 (operator → variant):
///
/// | Paper operator | Variant |
/// |---|---|
/// | Column Records `C.v` | [`Formula::Join`] |
/// | Column Values `R[C].records` | [`Formula::ColumnValues`] |
/// | Values in Preceding Records `R[C].Prev.records` | [`Formula::ColumnValues`] over [`Formula::Prev`] |
/// | Values in Following Records `R[C].R[Prev].records` | [`Formula::ColumnValues`] over [`Formula::Next`] |
/// | Aggregation on Values `aggr(vals)` | [`Formula::Aggregate`] |
/// | Difference of Values `sub(...)` | [`Formula::Sub`] |
/// | Difference of Value Occurrences `sub(count(C.v), count(C.u))` | [`Formula::Sub`] of [`Formula::Aggregate`]s |
/// | Union of Values `vals ⊔ vals` | [`Formula::Union`] |
/// | Intersection of Records `records ⊓ records` | [`Formula::Intersect`] |
/// | Records with Highest Value `argmax(Record, λx[C.x])` | [`Formula::SuperlativeRecords`] |
/// | Value in Record with Highest Index `R[C].argmax(records, Index)` | [`Formula::ColumnValues`] over [`Formula::RecordIndexSuperlative`] |
/// | Value with Most Appearances `argmax(vals, R[λx.count(C.x)])` | [`Formula::MostCommonValue`] |
/// | Comparing Values `argmax(vals, R[λx.R[C1].C2.x])` | [`Formula::CompareValues`] |
/// | Comparison (`Games.(> 4)`, Figure 4) | [`Formula::CompareJoin`] |
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Formula {
    /// A constant value: `Greece`, `2004`, `date(2013, 6, 8)`. Denotes the
    /// set of cells containing that value (a value unary).
    Const(Value),
    /// The set of all table records (`Rows` / `Record` in the paper's
    /// superlative example).
    AllRecords,
    /// Join (selection): records whose cell in `column` takes a value in the
    /// denotation of `values`. `Country.Greece` is
    /// `Join { column: "Country", values: Const("Greece") }`.
    Join {
        /// Column header acting as the binary relation.
        column: String,
        /// Value-denoting sub-formula (usually a constant or a union).
        values: Box<Formula>,
    },
    /// Comparison join: records whose (numeric) cell in `column` satisfies
    /// `op` against the single numeric value denoted by `value`.
    /// `Games.(> 4)` from Figure 4.
    CompareJoin {
        /// Column whose values are compared.
        column: String,
        /// Comparison operator.
        op: CompareOp,
        /// Value-denoting sub-formula with a single numeric denotation.
        value: Box<Formula>,
    },
    /// Reverse join (projection): values of `column` in the records denoted by
    /// `records`. `R[Year].Country.Greece`.
    ColumnValues {
        /// Column to project.
        column: String,
        /// Record-denoting sub-formula.
        records: Box<Formula>,
    },
    /// Records directly above the given records (`Prev.records`).
    Prev(Box<Formula>),
    /// Records directly below the given records (`R[Prev].records`).
    Next(Box<Formula>),
    /// Intersection of two record sets (`⊓`).
    Intersect(Box<Formula>, Box<Formula>),
    /// Union of two sets (values or records, `⊔`).
    Union(Box<Formula>, Box<Formula>),
    /// Aggregate over a value set (or `count` over records).
    Aggregate {
        /// Which aggregate to apply.
        op: AggregateOp,
        /// Sub-formula being aggregated.
        sub: Box<Formula>,
    },
    /// Records with the highest / lowest value in `column`:
    /// `argmax(records, λx[Column.x])`.
    SuperlativeRecords {
        /// Direction of the superlative.
        op: SuperlativeOp,
        /// Record-denoting sub-formula to select from.
        records: Box<Formula>,
        /// Column supplying the ranking key.
        column: String,
    },
    /// Records with the highest / lowest `Index` among the given records —
    /// the last (or first) row of a record set: `argmax(records, Index)`.
    RecordIndexSuperlative {
        /// Direction (`Argmax` = last row, `Argmin` = first row).
        op: SuperlativeOp,
        /// Record-denoting sub-formula.
        records: Box<Formula>,
    },
    /// Among the values denoted by `values`, the one appearing the most (or
    /// least) often in `column`: `argmax(vals, R[λx.count(Column.x)])`.
    MostCommonValue {
        /// Direction (most vs. fewest appearances).
        op: SuperlativeOp,
        /// Candidate values.
        values: Box<Formula>,
        /// Column in which appearances are counted.
        column: String,
    },
    /// Among the values denoted by `values` (values of `value_column`), the
    /// one whose record has the highest / lowest value in `key_column`:
    /// `argmax(London ⊔ Beijing, R[λx.R[Year].City.x])`.
    CompareValues {
        /// Direction of the comparison.
        op: SuperlativeOp,
        /// Candidate values (drawn from `value_column`).
        values: Box<Formula>,
        /// Column providing the ranking key (C1 in Table 10).
        key_column: String,
        /// Column the candidate values belong to (C2 in Table 10).
        value_column: String,
    },
    /// Arithmetic difference between two single-valued numeric denotations.
    Sub(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// Convenience constructor: `Column.value` with a string constant.
    pub fn join_str(column: &str, value: &str) -> Formula {
        Formula::Join {
            column: column.to_string(),
            values: Box::new(Formula::Const(Value::parse(value))),
        }
    }

    /// Convenience constructor: `R[column].records`.
    pub fn column_values(column: &str, records: Formula) -> Formula {
        Formula::ColumnValues {
            column: column.to_string(),
            records: Box::new(records),
        }
    }

    /// Convenience constructor: `aggr(sub)`.
    pub fn aggregate(op: AggregateOp, sub: Formula) -> Formula {
        Formula::Aggregate {
            op,
            sub: Box::new(sub),
        }
    }

    /// Direct sub-formulas, in a stable left-to-right order. This is the
    /// `Decompose(Q)` step of Algorithm 1.
    pub fn children(&self) -> Vec<&Formula> {
        match self {
            Formula::Const(_) | Formula::AllRecords => vec![],
            Formula::Join { values, .. } => vec![values],
            Formula::CompareJoin { value, .. } => vec![value],
            Formula::ColumnValues { records, .. } => vec![records],
            Formula::Prev(sub) | Formula::Next(sub) => vec![sub],
            Formula::Intersect(a, b) | Formula::Union(a, b) | Formula::Sub(a, b) => vec![a, b],
            Formula::Aggregate { sub, .. } => vec![sub],
            Formula::SuperlativeRecords { records, .. } => vec![records],
            Formula::RecordIndexSuperlative { records, .. } => vec![records],
            Formula::MostCommonValue { values, .. } => vec![values],
            Formula::CompareValues { values, .. } => vec![values],
        }
    }

    /// All sub-formulas of `self` including `self`, pre-order. This is the
    /// set `Q_SUB` used by the provenance function `P_E` (Equation 2).
    pub fn sub_formulas(&self) -> Vec<&Formula> {
        let mut out = vec![self];
        for child in self.children() {
            out.extend(child.sub_formulas());
        }
        out
    }

    /// Visit every sub-formula of `self` including `self`, pre-order, without
    /// allocating the intermediate vectors [`Formula::sub_formulas`] builds —
    /// the traversal used on per-candidate hot paths (feature extraction).
    pub fn visit(&self, f: &mut impl FnMut(&Formula)) {
        f(self);
        match self {
            Formula::Const(_) | Formula::AllRecords => {}
            Formula::Join { values: sub, .. }
            | Formula::CompareJoin { value: sub, .. }
            | Formula::ColumnValues { records: sub, .. }
            | Formula::Prev(sub)
            | Formula::Next(sub)
            | Formula::Aggregate { sub, .. }
            | Formula::SuperlativeRecords { records: sub, .. }
            | Formula::RecordIndexSuperlative { records: sub, .. }
            | Formula::MostCommonValue { values: sub, .. }
            | Formula::CompareValues { values: sub, .. } => sub.visit(f),
            Formula::Intersect(a, b) | Formula::Union(a, b) | Formula::Sub(a, b) => {
                a.visit(f);
                b.visit(f);
            }
        }
    }

    /// Column headers mentioned anywhere in the formula (projected, selected,
    /// aggregated or used as a superlative key) — the columns contributing to
    /// `P_C` (Equation 3).
    pub fn columns_mentioned(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        let mut seen = std::collections::HashSet::new();
        out.retain(|c| seen.insert(c.to_ascii_lowercase()));
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Formula::Const(_) | Formula::AllRecords => {}
            Formula::Join { column, values } => {
                out.push(column.clone());
                values.collect_columns(out);
            }
            Formula::CompareJoin { column, value, .. } => {
                out.push(column.clone());
                value.collect_columns(out);
            }
            Formula::ColumnValues { column, records } => {
                out.push(column.clone());
                records.collect_columns(out);
            }
            Formula::Prev(sub) | Formula::Next(sub) => sub.collect_columns(out),
            Formula::Intersect(a, b) | Formula::Union(a, b) | Formula::Sub(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Formula::Aggregate { sub, .. } => sub.collect_columns(out),
            Formula::SuperlativeRecords {
                records, column, ..
            } => {
                out.push(column.clone());
                records.collect_columns(out);
            }
            Formula::RecordIndexSuperlative { records, .. } => records.collect_columns(out),
            Formula::MostCommonValue { values, column, .. } => {
                out.push(column.clone());
                values.collect_columns(out);
            }
            Formula::CompareValues {
                values,
                key_column,
                value_column,
                ..
            } => {
                out.push(key_column.clone());
                out.push(value_column.clone());
                values.collect_columns(out);
            }
        }
    }

    /// Whether the outermost operator is an aggregate or arithmetic operation
    /// (the `OP` of Equation 1, which joins the provenance output set).
    pub fn is_numeric_operation(&self) -> bool {
        matches!(self, Formula::Aggregate { .. } | Formula::Sub(_, _))
    }

    /// Whether the formula is atomic (no sub-formulas) — the base case of
    /// Algorithm 1.
    pub fn is_atomic(&self) -> bool {
        self.children().is_empty()
    }

    /// Number of operator nodes in the formula, a simple complexity measure
    /// used as a parser feature and in candidate pruning.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Maximum nesting depth.
    pub fn depth(&self) -> usize {
        1 + self.children().iter().map(|c| c.depth()).max().unwrap_or(0)
    }
}

/// Quote a name for the concrete syntax if it is not a simple identifier.
fn quoted(name: &str) -> String {
    let simple = !name.is_empty()
        && name
            .chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false)
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        && !matches!(
            name.to_ascii_lowercase().as_str(),
            "and" | "or" | "rows" | "record" | "prev" | "next" | "r"
        );
    if simple {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\\\""))
    }
}

/// Render a constant value in the concrete syntax.
fn value_literal(value: &Value) -> String {
    match value {
        Value::Num(_) => value.to_string(),
        Value::Date(d) => match (d.month, d.day) {
            (Some(m), Some(day)) => format!("date({}, {}, {})", d.year, m, day),
            (Some(m), None) => format!("date({}, {})", d.year, m),
            _ => format!("date({})", d.year),
        },
        Value::Str(s) => quoted(s),
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Const(value) => write!(f, "{}", value_literal(value)),
            Formula::AllRecords => write!(f, "Rows"),
            Formula::Join { column, values } => {
                if values.is_atomic() {
                    write!(f, "{}.{}", quoted(column), values)
                } else {
                    write!(f, "{}.({})", quoted(column), values)
                }
            }
            Formula::CompareJoin { column, op, value } => {
                write!(f, "{}.({} {})", quoted(column), op.symbol(), value)
            }
            Formula::ColumnValues { column, records } => {
                if records.is_atomic()
                    || matches!(
                        records.as_ref(),
                        Formula::Join { .. }
                            | Formula::CompareJoin { .. }
                            | Formula::Prev(_)
                            | Formula::Next(_)
                    )
                {
                    write!(f, "R[{}].{}", quoted(column), records)
                } else {
                    write!(f, "R[{}].({})", quoted(column), records)
                }
            }
            Formula::Prev(sub) => {
                if sub.is_atomic() || matches!(sub.as_ref(), Formula::Join { .. }) {
                    write!(f, "Prev.{sub}")
                } else {
                    write!(f, "Prev.({sub})")
                }
            }
            Formula::Next(sub) => {
                if sub.is_atomic() || matches!(sub.as_ref(), Formula::Join { .. }) {
                    write!(f, "R[Prev].{sub}")
                } else {
                    write!(f, "R[Prev].({sub})")
                }
            }
            Formula::Intersect(a, b) => write!(f, "({a} and {b})"),
            Formula::Union(a, b) => write!(f, "({a} or {b})"),
            Formula::Aggregate { op, sub } => write!(f, "{}({})", op.name(), sub),
            Formula::SuperlativeRecords {
                op,
                records,
                column,
            } => {
                write!(f, "{}({}, {})", op.name(), records, quoted(column))
            }
            Formula::RecordIndexSuperlative { op, records } => {
                let name = match op {
                    SuperlativeOp::Argmax => "last",
                    SuperlativeOp::Argmin => "first",
                };
                write!(f, "{name}({records})")
            }
            Formula::MostCommonValue { op, values, column } => {
                let name = match op {
                    SuperlativeOp::Argmax => "most_common",
                    SuperlativeOp::Argmin => "least_common",
                };
                write!(f, "{}({}, {})", name, values, quoted(column))
            }
            Formula::CompareValues {
                op,
                values,
                key_column,
                value_column,
            } => {
                let name = match op {
                    SuperlativeOp::Argmax => "compare_max",
                    SuperlativeOp::Argmin => "compare_min",
                };
                write!(
                    f,
                    "{}({}, {}, {})",
                    name,
                    values,
                    quoted(key_column),
                    quoted(value_column)
                )
            }
            Formula::Sub(a, b) => write!(f, "sub({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure_one_query() -> Formula {
        // max(R[Year].Country.Greece)
        Formula::aggregate(
            AggregateOp::Max,
            Formula::column_values("Year", Formula::join_str("Country", "Greece")),
        )
    }

    #[test]
    fn display_matches_paper_style() {
        assert_eq!(
            figure_one_query().to_string(),
            "max(R[Year].Country.Greece)"
        );
        let q = Formula::column_values(
            "City",
            Formula::SuperlativeRecords {
                op: SuperlativeOp::Argmin,
                records: Box::new(Formula::AllRecords),
                column: "Year".into(),
            },
        );
        assert_eq!(q.to_string(), "R[City].(argmin(Rows, Year))");
    }

    #[test]
    fn display_quotes_multiword_names() {
        let q = Formula::column_values("Growth Rate", Formula::join_str("Lake", "Lake Huron"));
        assert_eq!(q.to_string(), "R[\"Growth Rate\"].Lake.\"Lake Huron\"");
    }

    #[test]
    fn sub_formulas_are_preorder() {
        let q = figure_one_query();
        let subs = q.sub_formulas();
        assert_eq!(subs.len(), 4);
        assert!(matches!(subs[0], Formula::Aggregate { .. }));
        assert!(matches!(subs[1], Formula::ColumnValues { .. }));
        assert!(matches!(subs[2], Formula::Join { .. }));
        assert!(matches!(subs[3], Formula::Const(_)));
    }

    #[test]
    fn columns_mentioned_deduplicates_case_insensitively() {
        let q = Formula::Intersect(
            Box::new(Formula::join_str("City", "London")),
            Box::new(Formula::join_str("city", "Athens")),
        );
        assert_eq!(q.columns_mentioned(), vec!["City".to_string()]);
        let q = figure_one_query();
        assert_eq!(
            q.columns_mentioned(),
            vec!["Year".to_string(), "Country".to_string()]
        );
    }

    #[test]
    fn size_and_depth() {
        let q = figure_one_query();
        assert_eq!(q.size(), 4);
        assert_eq!(q.depth(), 4);
        assert_eq!(Formula::AllRecords.size(), 1);
        assert!(Formula::AllRecords.is_atomic());
        assert!(!q.is_atomic());
    }

    #[test]
    fn numeric_operation_detection() {
        assert!(figure_one_query().is_numeric_operation());
        assert!(Formula::Sub(
            Box::new(Formula::Const(Value::num(1.0))),
            Box::new(Formula::Const(Value::num(2.0)))
        )
        .is_numeric_operation());
        assert!(!Formula::AllRecords.is_numeric_operation());
    }

    #[test]
    fn compare_op_semantics() {
        assert!(CompareOp::Gt.compare(5.0, 4.0));
        assert!(!CompareOp::Gt.compare(4.0, 4.0));
        assert!(CompareOp::Geq.compare(4.0, 4.0));
        assert!(CompareOp::Leq.compare(4.0, 4.0));
        assert!(CompareOp::Lt.compare(3.0, 4.0));
        assert!(CompareOp::Neq.compare(3.0, 4.0));
        assert!(!CompareOp::Neq.compare(4.0, 4.0));
    }

    #[test]
    fn aggregate_names() {
        for op in AggregateOp::all() {
            assert!(!op.name().is_empty());
        }
        assert_eq!(AggregateOp::Count.to_string(), "count");
        assert_eq!(SuperlativeOp::Argmax.to_string(), "argmax");
        assert_eq!(CompareOp::Geq.to_string(), ">=");
    }
}
