//! Differential check on the serving surface: the engine's
//! provenance-bearing top-k explanation path (scratch-reusing sessions,
//! interned features) must rank exactly like the string-keyed reference
//! parser on generated questions — the explanations users see are unchanged
//! by the interning rework.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wtq_core::Engine;
use wtq_dcs::Evaluator;
use wtq_parser::reference::{parse_in_session_reference, ReferenceModel};

#[test]
fn explained_top_k_matches_the_string_keyed_reference_ranking() {
    let engine = Engine::new();
    let reference = ReferenceModel::from_model(&engine.parser().model);
    let mut rng = ChaCha8Rng::seed_from_u64(20190416);
    let mut compared = 0usize;
    for (t, domain) in wtq_dataset::all_domains().iter().take(4).enumerate() {
        let table = wtq_dataset::generate_table(domain, t, &mut rng);
        let session = engine.session(&table);
        for question in wtq_dataset::generate_questions(&table, 5, &mut rng) {
            let top_k = 7usize;
            // One session answers every question for the table, so this also
            // exercises ScratchSpace reuse across parses.
            let explained = session.explain_question(&question.question, top_k);
            let evaluator = Evaluator::new(&table);
            let expected = parse_in_session_reference(
                &reference,
                &engine.parser().config,
                &question.question,
                &evaluator,
            );
            // from_candidate drops candidates whose highlights fail, so walk
            // the reference list and match the explained prefix in order.
            let mut expected_iter = expected.iter().take(top_k);
            for candidate in &explained {
                let matching = expected_iter
                    .find(|want| want.formula == candidate.formula)
                    .unwrap_or_else(|| {
                        panic!(
                            "explained candidate {} missing from reference top-{top_k}",
                            candidate.formula
                        )
                    });
                assert_eq!(candidate.score.to_bits(), matching.score.to_bits());
                assert_eq!(candidate.answer, matching.answer);
                // The provenance path ran: every explained candidate carries
                // its utterance and highlight structure.
                assert!(!candidate.utterance.is_empty());
                compared += 1;
            }
            assert!(
                !explained.is_empty(),
                "no candidates for {}",
                question.question
            );
        }
    }
    assert!(compared >= 50, "too few candidates compared: {compared}");
}
