//! Wire-shape candidate rendering: the flattened form explained
//! candidates take in server responses, plus its canonical JSON bytes.
//!
//! [`WireCandidate`] lives here (rather than in `wtq-server`) so the
//! caching layer can serialize a flight's result **once**, at completion
//! time, and every later cache hit can splice those bytes straight into a
//! response envelope instead of re-rendering highlights and re-running
//! `serde_json` — the encode-once serving path. The server re-exports the
//! type unchanged, so the wire format is untouched.

use serde::{Deserialize, Serialize};
use wtq_table::Table;

use crate::pipeline::ExplainedCandidate;

/// One explained candidate, flattened for the wire: the formula and SQL as
/// their canonical text renderings, the answer as its structured form, and
/// the provenance highlights as the sampled plain-text rendering (§5.3)
/// plus per-class cell counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireCandidate {
    /// Canonical rendering of the lambda DCS formula.
    pub formula: String,
    /// The parser's score.
    pub score: f64,
    /// The candidate's answer on the table.
    pub answer: crate::dcs::Answer,
    /// The NL utterance explaining the query (§5.1).
    pub utterance: String,
    /// SQL rendering, when the formula falls in the translatable fragment.
    pub sql: Option<String>,
    /// Sampled plain-text rendering of the highlighted table (§5.2–5.3).
    pub highlights: String,
    /// Cells highlighted as query output.
    pub output_cells: usize,
    /// Cells highlighted as execution provenance.
    pub execution_cells: usize,
    /// Cells highlighted as column provenance.
    pub column_cells: usize,
}

impl WireCandidate {
    /// Flatten one explained candidate against the table it was computed on.
    pub fn from_candidate(candidate: &ExplainedCandidate, table: &Table) -> WireCandidate {
        let (output_cells, execution_cells, column_cells) = candidate.highlights.class_counts();
        WireCandidate {
            formula: candidate.formula.to_string(),
            score: candidate.score,
            answer: candidate.answer.clone(),
            utterance: candidate.utterance.clone(),
            sql: candidate.sql.clone(),
            highlights: candidate.render_highlights(table, true),
            output_cells,
            execution_cells,
            column_cells,
        }
    }
}

/// The candidates' wire serialization: the JSON array a response's
/// `candidates` field carries, byte-for-byte — rendering a JSON array is
/// position-independent, so these bytes splice verbatim into any envelope
/// that would have serialized the same `Vec<WireCandidate>`.
pub fn candidates_json(candidates: &[ExplainedCandidate], table: &Table) -> Vec<u8> {
    let wire: Vec<WireCandidate> = candidates
        .iter()
        .map(|candidate| WireCandidate::from_candidate(candidate, table))
        .collect();
    serde_json::to_string(&wire)
        .unwrap_or_else(|_| "[]".to_string())
        .into_bytes()
}
