//! The two-tier serving architecture: a shared [`Engine`] and per-request
//! [`Session`]s.
//!
//! The paper's system is a *serving* workload — a user asks a question over
//! a table and interactively inspects the explanations — so the pipeline is
//! split along the axis of sharing:
//!
//! * [`Engine`] is the immutable, `Send + Sync` tier: the trained
//!   [`SemanticParser`] (model weights + lexicon/candidate configuration)
//!   and a thread-safe, LRU-bounded [`IndexCache`] of per-table columnar
//!   indexes. One `Engine` lives behind an `Arc` (or a `&'static`) and is
//!   shared by every worker thread; nothing in it mutates under `&self`
//!   except the interior-mutable cache, which is safe by construction.
//! * [`Session`] is the cheap per-request tier: a lambda DCS evaluator
//!   session holding the cross-candidate denotation memos for one table.
//!   Sessions are deliberately **not** `Sync` (the memo table is a
//!   `RefCell`) — each request owns one and drops it at the end, so there
//!   is no cross-request invalidation protocol at all.
//!
//! On top of the split sits a worker-pool batch runtime
//! ([`Engine::explain_batch`], built on [`wtq_runtime::run_batch`]):
//! requests fan out over `std::thread` workers pulling from a shared queue,
//! and results come back **in input order**, byte-identical to what the
//! sequential path produces — parsing and explanation are rng-free pure
//! functions of `(question, table, model)`, so scheduling cannot leak into
//! the output.

use serde::{Deserialize, Serialize};
use wtq_dcs::{Evaluator, Formula};
use wtq_parser::{Candidate, SemanticParser};
use wtq_runtime::{BatchError, CancelToken};
use wtq_table::{Catalog, IndexCache, Table, TableIndex};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::pipeline::ExplainedCandidate;

/// Configuration of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Default number of candidates explained per question (the paper's
    /// k = 7), used when a request does not specify its own.
    pub top_k: usize,
    /// Default worker count for [`Engine::explain_batch`].
    pub workers: usize,
    /// Maximum number of table indexes retained by the engine's cache
    /// before least-recently-used eviction.
    pub index_cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            top_k: 7,
            workers: wtq_runtime::default_workers(),
            index_cache_capacity: wtq_table::DEFAULT_INDEX_CACHE_CAPACITY,
        }
    }
}

/// One question to explain in a batch, addressed to a table by catalog name.
#[derive(Debug, Clone)]
pub struct ExplainRequest {
    /// The natural-language question.
    pub question: String,
    /// Name of the table in the catalog the batch runs against.
    pub table: String,
    /// Candidates to explain; `None` uses the engine's default `top_k`.
    pub top_k: Option<usize>,
}

impl ExplainRequest {
    /// A request with the engine's default `top_k`.
    pub fn new(question: impl Into<String>, table: impl Into<String>) -> Self {
        ExplainRequest {
            question: question.into(),
            table: table.into(),
            top_k: None,
        }
    }
}

/// The explained candidates of one batch request, in rank order.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The question asked.
    pub question: String,
    /// The table name it was asked against.
    pub table: String,
    /// The explained top-k candidates (empty when the table is unknown).
    pub candidates: Vec<ExplainedCandidate>,
    /// Why the request produced no candidates, when it failed outright
    /// (currently only: the catalog has no table of that name).
    pub error: Option<String>,
}

/// A serializable point-in-time snapshot of an [`Engine`]'s configuration
/// and serving counters — the single stats surface instrumentation (and a
/// server's `stats` endpoint) reads instead of poking at ad-hoc accessors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Configured default top-k ([`EngineConfig::top_k`]).
    pub top_k: usize,
    /// Configured default worker count ([`EngineConfig::workers`]).
    pub workers: usize,
    /// LRU capacity of the index cache.
    pub index_cache_capacity: usize,
    /// Tables currently resident in the index cache.
    pub cached_tables: usize,
    /// Index-cache hit / miss / eviction counters since construction.
    pub index_cache: wtq_table::CacheStats,
    /// Questions answered through the engine's entry points
    /// ([`Engine::explain_question`] and the batch paths).
    pub questions_served: u64,
    /// Batch calls answered ([`Engine::explain_batch`] and variants).
    pub batches_served: u64,
    /// Engine entry-point calls currently executing.
    pub in_flight: u64,
    /// SQL planner decision counters: scan vs index vs columnar-kernel
    /// choices and estimated vs actual selectivity. Snapshotted from this
    /// engine's own [`wtq_sql::PlannerCounters`] set
    /// ([`Engine::planner_counters`]); anything executing SQL on the
    /// engine's behalf shares that set, so the numbers cover exactly this
    /// engine's activity, not the whole process.
    pub planner: wtq_sql::PlannerStats,
    /// Parse-pipeline stage timings (process-wide): tokenize, lexicon,
    /// candidate composition, formula execution, feature extraction and
    /// scoring spans per question.
    pub parsing: wtq_parser::ParseStats,
    /// Deduplicating answer-cache counters, populated when the engine is
    /// served through a [`crate::CachedEngine`]; all-zero on a bare engine
    /// (which has no answer cache).
    pub answer_cache: wtq_cache::CacheStats,
}

/// Serving counters of an [`Engine`] (all atomics: incremented under
/// `&self` from any worker thread).
#[derive(Debug, Default)]
struct EngineCounters {
    questions_served: AtomicU64,
    batches_served: AtomicU64,
    in_flight: AtomicU64,
}

/// RAII in-flight marker: increments on entry, decrements on drop (panic
/// included, so a panicking request never leaks an in-flight count).
struct InFlightGuard<'a>(&'a AtomicU64);

impl<'a> InFlightGuard<'a> {
    fn enter(counter: &'a AtomicU64) -> Self {
        counter.fetch_add(1, Ordering::Relaxed);
        InFlightGuard(counter)
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The shared, immutable tier of the pipeline: trained parser + lexicon and
/// candidate configuration + thread-safe index cache. `Send + Sync` by
/// construction (a compile-time test in this module enforces it), so one
/// engine serves any number of concurrent sessions:
///
/// ```
/// use wtq_core::{Engine, ExplainRequest};
/// use wtq_table::{samples, Catalog};
///
/// let engine = Engine::new();
/// let catalog: Catalog = [samples::olympics(), samples::medals()].into_iter().collect();
/// let requests = vec![
///     ExplainRequest::new("Greece held its last Olympics in what year?", "olympics"),
///     ExplainRequest::new("What is the difference in Total between Fiji and Tonga?", "medals"),
/// ];
/// let explanations = engine.explain_batch(&catalog, &requests);
/// assert_eq!(explanations.len(), 2);
/// assert!(!explanations[0].candidates.is_empty());
/// ```
#[derive(Debug)]
pub struct Engine {
    parser: SemanticParser,
    indexes: IndexCache,
    config: EngineConfig,
    counters: EngineCounters,
    /// SQL planner decision counters attributed to this engine. The engine
    /// itself only *translates* formulas to SQL; callers that execute the
    /// translations (benches, validation suites) share this set via
    /// [`Engine::planner_counters`] so the activity lands on the engine's
    /// stats surface.
    planner: Arc<wtq_sql::PlannerCounters>,
}

impl Default for Engine {
    /// An engine around the baseline (prior-weighted) parser.
    fn default() -> Self {
        Engine::new()
    }
}

impl Clone for Engine {
    /// Clones the model and configuration; the clone starts with a fresh,
    /// empty index cache (cached indexes are a transparent optimization and
    /// rebuild on demand).
    fn clone(&self) -> Self {
        Engine::with_config(self.parser.clone(), self.config.clone())
    }
}

impl Engine {
    /// An engine around the baseline (prior-weighted) parser.
    pub fn new() -> Self {
        Engine::with_parser(SemanticParser::with_prior())
    }

    /// An engine around an already-trained parser.
    pub fn with_parser(parser: SemanticParser) -> Self {
        Engine::with_config(parser, EngineConfig::default())
    }

    /// An engine with explicit configuration.
    pub fn with_config(parser: SemanticParser, config: EngineConfig) -> Self {
        Engine {
            parser,
            indexes: IndexCache::with_capacity(config.index_cache_capacity),
            config,
            counters: EngineCounters::default(),
            planner: Arc::new(wtq_sql::PlannerCounters::new()),
        }
    }

    /// This engine's SQL planner decision counters. Hand a clone of the
    /// `Arc` to any [`wtq_sql::SqlEngine`] executing translated formulas on
    /// this engine's behalf (via
    /// [`SqlEngine::with_counters`][wtq_sql::SqlEngine::with_counters]) and
    /// the decisions show up in [`Engine::stats`].
    pub fn planner_counters(&self) -> Arc<wtq_sql::PlannerCounters> {
        Arc::clone(&self.planner)
    }

    /// A serializable snapshot of the engine's configuration, index-cache
    /// counters and serving counters — see [`EngineStats`].
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            top_k: self.config.top_k,
            workers: self.config.workers,
            index_cache_capacity: self.config.index_cache_capacity,
            cached_tables: self.indexes.len(),
            index_cache: self.indexes.stats(),
            questions_served: self.counters.questions_served.load(Ordering::Relaxed),
            batches_served: self.counters.batches_served.load(Ordering::Relaxed),
            in_flight: self.counters.in_flight.load(Ordering::Relaxed),
            planner: self.planner.snapshot(),
            parsing: wtq_parser::parse_stats(),
            answer_cache: wtq_cache::CacheStats::default(),
        }
    }

    /// The shared semantic parser.
    pub fn parser(&self) -> &SemanticParser {
        &self.parser
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The thread-safe index cache (for instrumentation: hit / miss /
    /// eviction counters via [`IndexCache::stats`]).
    pub fn index_cache(&self) -> &IndexCache {
        &self.indexes
    }

    /// The shared columnar index for `table`, built on first use and then
    /// served from the LRU cache.
    pub fn index_for(&self, table: &Table) -> Arc<TableIndex> {
        self.indexes.get_or_build(table)
    }

    /// Open a per-request [`Session`] on `table`. Cheap: the table's index
    /// comes from the shared cache; only the (empty) denotation memo table
    /// is allocated per session.
    pub fn session<'a>(&'a self, table: &'a Table) -> Session<'a> {
        Session {
            parser: &self.parser,
            evaluator: Evaluator::with_index(table, self.index_for(table)),
            scratch: std::cell::RefCell::new(wtq_parser::ScratchSpace::new()),
        }
    }

    /// Parse and explain one question — the single-question serving path,
    /// equivalent to a one-request batch.
    pub fn explain_question(
        &self,
        question: &str,
        table: &Table,
        top_k: usize,
    ) -> Vec<ExplainedCandidate> {
        let _in_flight = InFlightGuard::enter(&self.counters.in_flight);
        let explained = self.session(table).explain_question(question, top_k);
        self.counters
            .questions_served
            .fetch_add(1, Ordering::Relaxed);
        explained
    }

    /// Explain a single, already-known formula (used when a query is written
    /// by hand rather than parsed from a question).
    pub fn explain_formula(
        &self,
        formula: &Formula,
        table: &Table,
    ) -> wtq_dcs::Result<ExplainedCandidate> {
        self.session(table).explain_formula(formula)
    }

    /// Explain a batch of requests on the engine's configured worker pool.
    /// Results are returned in request order and are byte-identical to
    /// explaining each request sequentially — see [`Engine::explain_batch_with`].
    pub fn explain_batch(
        &self,
        catalog: &Catalog,
        requests: &[ExplainRequest],
    ) -> Vec<Explanation> {
        self.explain_batch_with(self.config.workers, catalog, requests)
    }

    /// [`Engine::explain_batch`] with an explicit worker count. Each worker
    /// opens one [`Session`] per request against the shared engine; because
    /// parsing and explaining are pure functions of the request and the
    /// immutable model/table, the output does not depend on `workers`.
    pub fn explain_batch_with(
        &self,
        workers: usize,
        catalog: &Catalog,
        requests: &[ExplainRequest],
    ) -> Vec<Explanation> {
        let _in_flight = InFlightGuard::enter(&self.counters.in_flight);
        let explanations =
            wtq_runtime::run_batch(workers, requests.iter().collect(), |_, request| {
                self.explain_one(catalog, request)
            });
        self.record_batch(requests.len());
        explanations
    }

    /// [`Engine::explain_batch`] under a [`CancelToken`] — the
    /// graceful-shutdown hook for serving layers: cancelling mid-batch stops
    /// queued questions and returns [`BatchError::Cancelled`], and a panic in
    /// any worker surfaces as [`BatchError::JobPanicked`] instead of
    /// unwinding into the caller's accept loop.
    pub fn explain_batch_cancellable(
        &self,
        catalog: &Catalog,
        requests: &[ExplainRequest],
        cancel: &CancelToken,
    ) -> Result<Vec<Explanation>, BatchError> {
        let _in_flight = InFlightGuard::enter(&self.counters.in_flight);
        let explanations = wtq_runtime::run_batch_cancellable(
            self.config.workers,
            requests.iter().collect(),
            cancel,
            |_, request| self.explain_one(catalog, request),
        )?;
        self.record_batch(requests.len());
        Ok(explanations)
    }

    /// Answer one batch request (the per-item body shared by every batch
    /// entry point).
    fn explain_one(&self, catalog: &Catalog, request: &ExplainRequest) -> Explanation {
        let Some(table) = catalog.get(&request.table) else {
            return Explanation {
                question: request.question.clone(),
                table: request.table.clone(),
                candidates: Vec::new(),
                error: Some(format!("unknown table: {}", request.table)),
            };
        };
        let top_k = request.top_k.unwrap_or(self.config.top_k);
        Explanation {
            question: request.question.clone(),
            table: request.table.clone(),
            candidates: self
                .session(table)
                .explain_question(&request.question, top_k),
            error: None,
        }
    }

    fn record_batch(&self, questions: usize) {
        self.counters.batches_served.fetch_add(1, Ordering::Relaxed);
        self.counters
            .questions_served
            .fetch_add(questions as u64, Ordering::Relaxed);
    }
}

/// The per-request tier: one evaluator session (with its cross-candidate
/// denotation memos) bound to one table, borrowing the shared [`Engine`]
/// state. Intentionally not `Sync` — a session belongs to exactly one
/// request/thread and dies with it.
pub struct Session<'a> {
    parser: &'a SemanticParser,
    evaluator: Evaluator<'a>,
    /// Reusable parse working buffers — allocated once per session, reused
    /// by every question it answers (another reason sessions are not `Sync`).
    scratch: std::cell::RefCell<wtq_parser::ScratchSpace>,
}

impl<'a> Session<'a> {
    /// The table this session answers questions about.
    pub fn table(&self) -> &Table {
        self.evaluator.table()
    }

    /// The underlying evaluator session (exposed for advanced callers that
    /// evaluate formulas directly against the warm denotation cache).
    pub fn evaluator(&self) -> &Evaluator<'a> {
        &self.evaluator
    }

    /// `(hits, misses)` of this session's denotation memo table.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.evaluator.cache_stats()
    }

    /// Parse a question into ranked candidates, sharing this session's
    /// index and denotation memos.
    pub fn parse(&self, question: &str) -> Vec<Candidate> {
        self.parser
            .parse_in_session_with(question, &self.evaluator, &mut self.scratch.borrow_mut())
    }

    /// Parse `question` and explain the top-k candidates (utterance, SQL
    /// rendering and provenance highlights for each).
    pub fn explain_question(&self, question: &str, top_k: usize) -> Vec<ExplainedCandidate> {
        let mut candidates = self.parse(question);
        candidates.truncate(top_k);
        candidates
            .into_iter()
            .filter_map(|candidate| ExplainedCandidate::from_candidate(candidate, self.table()))
            .collect()
    }

    /// Explain a single, already-known formula.
    pub fn explain_formula(&self, formula: &Formula) -> wtq_dcs::Result<ExplainedCandidate> {
        ExplainedCandidate::from_formula(formula, self.table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtq_dcs::{parse_formula, Answer};
    use wtq_table::samples;

    /// The compile-time thread-safety contract of the shared tier: `Engine`
    /// (and the request/response types that cross worker threads) must be
    /// `Send + Sync`. A `Session` deliberately is not.
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn engine_is_send_sync() {
        assert_send_sync::<Engine>();
        assert_send_sync::<EngineConfig>();
        assert_send_sync::<ExplainRequest>();
        assert_send_sync::<Explanation>();
    }

    #[test]
    fn engine_explains_like_the_pipeline() {
        let engine = Engine::new();
        let table = samples::olympics();
        let explained =
            engine.explain_question("Greece held its last Olympics in what year?", &table, 7);
        assert!(!explained.is_empty());
        let gold = parse_formula("max(R[Year].Country.Greece)").unwrap();
        let gold_candidate = explained
            .iter()
            .find(|c| wtq_parser::formulas_equivalent(&c.formula, &gold))
            .expect("gold candidate explained");
        assert_eq!(gold_candidate.answer, Answer::number(2004.0));
        // A second question on the same table hits the index cache.
        let stats = engine.index_cache().stats();
        assert_eq!(stats.misses, 1);
        engine.explain_question("In what year did France hold the Olympics?", &table, 3);
        assert_eq!(engine.index_cache().stats().hits, 1);
    }

    #[test]
    fn session_shares_denotation_memos_across_questions() {
        let engine = Engine::new();
        let table = samples::olympics();
        let session = engine.session(&table);
        let first = session.parse("Greece held its last Olympics in what year?");
        assert!(!first.is_empty());
        let (_, misses_after_first) = session.cache_stats();
        let again = session.parse("Greece held its last Olympics in what year?");
        assert_eq!(first.len(), again.len());
        let (hits, misses) = session.cache_stats();
        // The repeat question re-used memoized record denotations instead of
        // re-evaluating them.
        assert_eq!(misses, misses_after_first);
        assert!(hits > 0);
    }

    #[test]
    fn batch_results_are_input_ordered_and_match_sequential() {
        let engine = Engine::new();
        let catalog: Catalog = [samples::olympics(), samples::medals()]
            .into_iter()
            .collect();
        let requests = vec![
            ExplainRequest::new("Greece held its last Olympics in what year?", "olympics"),
            ExplainRequest::new(
                "What is the difference in Total between Fiji and Tonga?",
                "medals",
            ),
            ExplainRequest::new("Which city hosted in 2008?", "olympics"),
            ExplainRequest::new("total Gold of Fiji?", "medals"),
        ];
        let parallel = engine.explain_batch_with(4, &catalog, &requests);
        let sequential = engine.explain_batch_with(1, &catalog, &requests);
        assert_eq!(parallel.len(), requests.len());
        for ((parallel, sequential), request) in parallel.iter().zip(&sequential).zip(&requests) {
            assert_eq!(parallel.question, request.question);
            assert_eq!(parallel.table, request.table);
            assert_eq!(parallel.candidates.len(), sequential.candidates.len());
            for (a, b) in parallel.candidates.iter().zip(&sequential.candidates) {
                assert_eq!(a.formula, b.formula);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!(a.utterance, b.utterance);
                assert_eq!(a.sql, b.sql);
            }
        }
    }

    #[test]
    fn unknown_table_reports_an_error_instead_of_panicking() {
        let engine = Engine::new();
        let catalog: Catalog = [samples::olympics()].into_iter().collect();
        let requests = vec![
            ExplainRequest::new("anything", "no-such-table"),
            ExplainRequest::new("Which city hosted in 2008?", "olympics"),
        ];
        let explanations = engine.explain_batch(&catalog, &requests);
        assert!(explanations[0]
            .error
            .as_deref()
            .unwrap()
            .contains("no-such-table"));
        assert!(explanations[0].candidates.is_empty());
        assert!(explanations[1].error.is_none());
        assert!(!explanations[1].candidates.is_empty());
    }

    #[test]
    fn per_request_top_k_overrides_the_default() {
        let engine = Engine::new();
        let catalog: Catalog = [samples::olympics()].into_iter().collect();
        let mut request = ExplainRequest::new("Which city hosted in 2008?", "olympics");
        request.top_k = Some(1);
        let explanations = engine.explain_batch(&catalog, &[request]);
        assert_eq!(explanations[0].candidates.len(), 1);
    }

    #[test]
    fn stats_snapshot_tracks_cache_and_serving_counters() {
        let engine = Engine::new();
        let catalog: Catalog = [samples::olympics()].into_iter().collect();
        let fresh = engine.stats();
        assert_eq!(fresh.top_k, engine.config().top_k);
        assert_eq!(
            fresh.index_cache_capacity,
            engine.config().index_cache_capacity
        );
        assert_eq!(fresh.questions_served, 0);
        assert_eq!(fresh.batches_served, 0);
        assert_eq!(fresh.in_flight, 0);
        assert_eq!(fresh.cached_tables, 0);

        let table = samples::olympics();
        engine.explain_question("Which city hosted in 2008?", &table, 1);
        engine.explain_batch(
            &catalog,
            &[
                ExplainRequest::new("Which city hosted in 2008?", "olympics"),
                ExplainRequest::new("In what year did France hold the Olympics?", "olympics"),
            ],
        );
        let stats = engine.stats();
        assert_eq!(stats.questions_served, 3);
        assert_eq!(stats.batches_served, 1);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.cached_tables, 1);
        assert_eq!(stats.index_cache.misses, 1);
        assert!(stats.index_cache.hits >= 2);

        // The snapshot is serde-serializable and round-trips.
        let json = serde_json::to_string(&stats).expect("stats serialize");
        let back: EngineStats = serde_json::from_str(&json).expect("stats parse");
        assert_eq!(back, stats);
    }

    #[test]
    fn cancellable_batch_matches_plain_batch_and_cancels() {
        let engine = Engine::new();
        let catalog: Catalog = [samples::olympics()].into_iter().collect();
        let requests = vec![
            ExplainRequest::new("Which city hosted in 2008?", "olympics"),
            ExplainRequest::new("Greece held its last Olympics in what year?", "olympics"),
        ];
        let cancel = CancelToken::new();
        let checked = engine
            .explain_batch_cancellable(&catalog, &requests, &cancel)
            .expect("uncancelled batch succeeds");
        let plain = engine.explain_batch(&catalog, &requests);
        assert_eq!(checked.len(), plain.len());
        for (a, b) in checked.iter().zip(&plain) {
            assert_eq!(a.candidates.len(), b.candidates.len());
        }

        cancel.cancel();
        assert!(matches!(
            engine.explain_batch_cancellable(&catalog, &requests, &cancel),
            Err(BatchError::Cancelled)
        ));
    }

    #[test]
    fn cloned_engines_share_nothing_but_the_model() {
        let engine = Engine::new();
        let table = samples::olympics();
        engine.explain_question("Which city hosted in 2008?", &table, 1);
        let clone = engine.clone();
        assert_eq!(clone.index_cache().stats().misses, 0);
        assert!(clone.index_cache().is_empty());
        assert_eq!(clone.config().top_k, engine.config().top_k);
    }
}
