//! # wtq-core
//!
//! The end-to-end pipeline of *Explaining Queries over Web Tables to
//! Non-Experts*: parse a natural-language question over a web table into
//! candidate lambda DCS queries and explain each candidate to a non-expert
//! user through an NL utterance, provenance-based table highlights and an
//! equivalent SQL rendering (Figure 2's architecture).
//!
//! ```
//! use wtq_core::ExplanationPipeline;
//! use wtq_table::samples;
//!
//! let pipeline = ExplanationPipeline::new();
//! let table = samples::olympics();
//! let explained = pipeline.explain_question(
//!     "Greece held its last Olympics in what year?",
//!     &table,
//!     7,
//! );
//! assert!(!explained.is_empty());
//! // Every candidate comes with an utterance and highlights.
//! assert!(explained[0].utterance.contains("column"));
//! ```
//!
//! The sub-crates are re-exported under their short names so downstream users
//! need a single dependency:
//!
//! The serving path is split into two tiers: a shared, `Send + Sync`
//! [`Engine`] (trained parser + thread-safe LRU index cache) and cheap
//! per-request [`Session`]s; [`Engine::explain_batch`] fans a batch of
//! questions out over a worker pool with deterministic, input-order
//! results. [`ExplanationPipeline`] remains as the single-threaded
//! convenience wrapper.
//!
//! | module | contents |
//! |---|---|
//! | [`table`] | web-table data model (§3.1) |
//! | [`dcs`] | lambda DCS language and evaluator (§3.2) |
//! | [`sql`] | SQL translation and engine (Table 10) |
//! | [`provenance`] | multilevel cell-based provenance and highlights (§4, §5.2) |
//! | [`explain`] | query-to-utterance explanations (§5.1) |
//! | [`parser`] | the log-linear semantic parser (§6.2) |
//! | [`dataset`] | synthetic WikiTableQuestions-style data (§6.1) |
//! | [`study`] | simulated user study, deployment and feedback loops (§7) |
//! | [`runtime`] | the worker-pool batch runtime backing `explain_batch` |

pub use wtq_dataset as dataset;
pub use wtq_dcs as dcs;
pub use wtq_explain as explain;
pub use wtq_parser as parser;
pub use wtq_provenance as provenance;
pub use wtq_runtime as runtime;
pub use wtq_sql as sql;
pub use wtq_study as study;
pub use wtq_table as table;

pub mod cached;
pub mod engine;
pub mod pipeline;
pub mod wire;

pub use cached::{BatchPlan, CachedAnswer, CachedCandidates, CachedEngine};
pub use engine::{Engine, EngineConfig, EngineStats, ExplainRequest, Explanation, Session};
pub use pipeline::{ExplainedCandidate, ExplanationPipeline};
pub use wire::{candidates_json, WireCandidate};
