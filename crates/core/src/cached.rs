//! [`CachedEngine`]: an [`Engine`] behind a deduplicating answer cache.
//!
//! Question traffic over a fixed table catalog is Zipfian — a handful of
//! `(table, question)` pairs dominates qps — so the single biggest serving
//! multiplier is not re-running parse → evaluate → explain for a question
//! the engine already answered. `CachedEngine` wraps a shared [`Engine`]
//! with a [`wtq_cache::AnswerCache`] keyed by
//! `(content fingerprint, normalized question, top_k)`:
//!
//! * the **content fingerprint** ([`wtq_table::Table::content_fingerprint`])
//!   hashes cell contents, not just shape, so two different tables can
//!   never alias one entry, and a reloaded table naturally keys afresh;
//! * the **normalized question** ([`wtq_parser::normalize_question`]) is
//!   the exact canonical form question analysis itself parses, so
//!   trivially-variant phrasings (`"Which YEAR?"` / `"which year"`) share
//!   one entry and the cached answer is *guaranteed* byte-identical to a
//!   fresh run — the cache key cannot drift from tokenization because they
//!   are the same function.
//!
//! What is cached is the [`ExplainedCandidate`] payload — together with
//! its wire serialization, see [`CachedCandidates`] — **not** the
//! enclosing [`Explanation`]: the explanation echoes the raw (caller's)
//! question and table name, which must reflect each request verbatim, so
//! they are re-attached per request. Candidate explanation is an rng-free
//! pure function of `(question, table, model)`, which is what makes the
//! payload safely shareable.
//!
//! Concurrent identical requests collapse onto one leader's execution
//! (single-flight, [`wtq_cache::Begin`]); a table reload is propagated by
//! [`CachedEngine::invalidate_table`], which epoch-stamps the fingerprint
//! so stale entries die lazily.

use std::sync::Arc;

use wtq_cache::{AnswerCache, Begin, CacheConfig, CacheKey, CacheStats, FlightGuard};
use wtq_runtime::{BatchError, CancelToken};
use wtq_table::{Catalog, Table};

use crate::engine::{Engine, EngineStats, ExplainRequest, Explanation};
use crate::pipeline::ExplainedCandidate;
use crate::wire;

/// The cached answer payload of one `(table contents, normalized
/// question, top_k)` triple: the explained top-k candidates *plus* their
/// wire serialization ([`wire::candidates_json`]), computed once when the
/// flight completes. A cache hit hands servers pre-encoded bytes to
/// splice straight into a response envelope — the encode-once path —
/// while the structured candidates stay available for callers that
/// inspect them. Derefs to the candidate list, so code written against
/// the pre-encode-once payload keeps working unchanged.
#[derive(Debug)]
pub struct CachedCandidates {
    candidates: Vec<ExplainedCandidate>,
    /// `serde_json` bytes of the wire `candidates` array, shared so the
    /// serving layer can hold them beyond the cache entry's lifetime.
    body: Arc<Vec<u8>>,
}

impl CachedCandidates {
    /// Explain-and-serialize once: flatten `candidates` against `table`
    /// (the table they were computed on) into their canonical JSON bytes.
    pub fn new(candidates: Vec<ExplainedCandidate>, table: &Table) -> CachedCandidates {
        let body = Arc::new(wire::candidates_json(&candidates, table));
        CachedCandidates { candidates, body }
    }

    /// The explained candidates.
    pub fn candidates(&self) -> &[ExplainedCandidate] {
        &self.candidates
    }

    /// The candidates' canonical JSON-array bytes, serialized at flight
    /// completion (see [`wire::candidates_json`]).
    pub fn body(&self) -> &Arc<Vec<u8>> {
        &self.body
    }
}

impl std::ops::Deref for CachedCandidates {
    type Target = Vec<ExplainedCandidate>;

    fn deref(&self) -> &Vec<ExplainedCandidate> {
        &self.candidates
    }
}

/// A shared cached answer (see [`CachedCandidates`]).
pub type CachedAnswer = Arc<CachedCandidates>;

/// Rough resident size of a cached answer, for the cache's byte gauge:
/// the inline struct plus its dominant heap strings and the serialized
/// body bytes.
fn approx_bytes(value: &CachedCandidates) -> usize {
    std::mem::size_of::<CachedCandidates>()
        + value.body().len()
        + value
            .candidates()
            .iter()
            .map(|c| {
                std::mem::size_of::<ExplainedCandidate>()
                    + c.utterance.len()
                    + c.sql.as_ref().map_or(0, String::len)
            })
            .sum::<usize>()
}

/// An [`Engine`] wrapped with a deduplicating answer cache — see the
/// module docs. `Send + Sync` like the engine itself; share one behind an
/// `Arc` across every serving thread.
pub struct CachedEngine {
    engine: Arc<Engine>,
    cache: AnswerCache<CachedCandidates>,
}

impl CachedEngine {
    /// Wrap `engine` with an answer cache of the given configuration.
    pub fn new(engine: Arc<Engine>, config: CacheConfig) -> CachedEngine {
        CachedEngine {
            engine,
            cache: AnswerCache::new(config),
        }
    }

    /// Wrap `engine` with a default-configured cache of `capacity` entries.
    pub fn with_capacity(engine: Arc<Engine>, capacity: usize) -> CachedEngine {
        CachedEngine::new(
            engine,
            CacheConfig {
                capacity,
                ..CacheConfig::default()
            },
        )
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The underlying answer cache (for instrumentation and tests).
    pub fn cache(&self) -> &AnswerCache<CachedCandidates> {
        &self.cache
    }

    /// The cache key of `(question, table, top_k)`: content fingerprint +
    /// the parser's own question normalization. `top_k = None` resolves to
    /// the engine's configured default, exactly as execution would.
    pub fn key_for(&self, question: &str, table: &Table, top_k: Option<usize>) -> CacheKey {
        CacheKey {
            fingerprint: table.content_fingerprint(),
            question: wtq_parser::normalize_question(question),
            top_k: top_k.unwrap_or(self.engine.config().top_k),
        }
    }

    /// Non-blocking cache lookup — never joins a flight, never executes.
    /// Counts a hit or a miss.
    pub fn lookup(&self, key: &CacheKey) -> Option<CachedAnswer> {
        self.cache.lookup(key)
    }

    /// The serving layer's pre-admission fast path: like
    /// [`CachedEngine::lookup`] but a miss is not counted, because the
    /// request will reach [`CachedEngine::begin`] after admission and that
    /// call records its real outcome — one stats event per request.
    pub fn probe(&self, key: &CacheKey) -> Option<CachedAnswer> {
        self.cache.probe(key)
    }

    /// Single-flight entry point for callers that interleave their own
    /// work (admission control) between leading and executing: a
    /// [`Begin::Lead`] holds the flight; complete it with the computed
    /// candidates or drop it to abandon (waiters then retry as leaders).
    pub fn begin(&self, key: &CacheKey) -> Begin<'_, CachedCandidates> {
        self.cache.begin(key)
    }

    /// Execute `question` on the wrapped engine and publish the result to
    /// `guard`'s flight. The one sanctioned leader body: every leader path
    /// (here and in serving layers) funnels through it so the executed
    /// question/top_k always match the flight's key.
    pub fn execute_flight(
        &self,
        guard: FlightGuard<'_, CachedCandidates>,
        question: &str,
        table: &Table,
        top_k: usize,
    ) -> CachedAnswer {
        let explained = self.engine.explain_question(question, table, top_k);
        // Serialize here, exactly once per flight: every hit on this entry
        // reuses the bytes instead of re-rendering and re-encoding.
        let value = CachedCandidates::new(explained, table);
        let bytes = approx_bytes(&value);
        guard.complete(value, bytes)
    }

    /// Explain one question through the cache: a hit answers from memory,
    /// a concurrent duplicate collapses onto the in-flight leader, and a
    /// cold question executes once and populates the entry.
    pub fn explain_question(&self, question: &str, table: &Table, top_k: usize) -> CachedAnswer {
        let key = self.key_for(question, table, Some(top_k));
        match self.cache.begin(&key) {
            Begin::Hit(value) | Begin::Collapsed(value) => value,
            Begin::Lead(guard) => self.execute_flight(guard, question, table, top_k),
        }
    }

    /// Plan a batch against the cache: probe every item, deduplicate the
    /// misses batch-internally (two items with one key execute once) and
    /// report what still needs the engine. The serving layer sizes its
    /// admission weight from [`BatchPlan::missing`] — an all-hit batch
    /// costs no execution at all.
    pub fn plan_batch(&self, catalog: &Catalog, requests: &[ExplainRequest]) -> BatchPlan {
        let mut slots = Vec::with_capacity(requests.len());
        let mut pending: Vec<(CacheKey, usize)> = Vec::new();
        for (index, request) in requests.iter().enumerate() {
            let Some(table) = catalog.get(&request.table) else {
                slots.push(BatchSlot::UnknownTable);
                continue;
            };
            let key = self.key_for(&request.question, table, request.top_k);
            if let Some(value) = self.cache.lookup(&key) {
                slots.push(BatchSlot::Hit(value));
                continue;
            }
            let unique = match pending.iter().position(|(k, _)| *k == key) {
                Some(unique) => unique,
                None => {
                    pending.push((key, index));
                    pending.len() - 1
                }
            };
            slots.push(BatchSlot::Pending(unique));
        }
        BatchPlan { slots, pending }
    }

    /// Execute a planned batch: run the deduplicated misses on the engine
    /// (cancellably), insert their payloads, and assemble per-request
    /// explanations — each echoing its own raw question and table name, so
    /// responses are byte-identical to an uncached run.
    pub fn execute_batch(
        &self,
        plan: BatchPlan,
        catalog: &Catalog,
        requests: &[ExplainRequest],
        cancel: &CancelToken,
    ) -> Result<Vec<Explanation>, BatchError> {
        let unique_requests: Vec<ExplainRequest> = plan
            .pending
            .iter()
            .map(|&(_, index)| requests[index].clone())
            .collect();
        let computed = if unique_requests.is_empty() {
            Vec::new()
        } else {
            self.engine
                .explain_batch_cancellable(catalog, &unique_requests, cancel)?
        };
        let answers: Vec<CachedAnswer> = plan
            .pending
            .iter()
            .zip(computed)
            .map(|(&(ref key, index), explanation)| {
                let table = catalog
                    .get(&requests[index].table)
                    .expect("planned table vanished from an immutable catalog");
                let value = CachedCandidates::new(explanation.candidates, table);
                let bytes = approx_bytes(&value);
                self.cache.insert(key, value, bytes)
            })
            .collect();
        Ok(plan
            .slots
            .into_iter()
            .zip(requests)
            .map(|(slot, request)| {
                let (candidates, error) = match slot {
                    BatchSlot::Hit(value) => (value.candidates().to_vec(), None),
                    BatchSlot::Pending(unique) => (answers[unique].candidates().to_vec(), None),
                    BatchSlot::UnknownTable => (
                        Vec::new(),
                        Some(format!("unknown table: {}", request.table)),
                    ),
                };
                Explanation {
                    question: request.question.clone(),
                    table: request.table.clone(),
                    candidates,
                    error,
                }
            })
            .collect())
    }

    /// Explain a batch through the cache — plan + execute in one call.
    pub fn explain_batch_cancellable(
        &self,
        catalog: &Catalog,
        requests: &[ExplainRequest],
        cancel: &CancelToken,
    ) -> Result<Vec<Explanation>, BatchError> {
        let plan = self.plan_batch(catalog, requests);
        self.execute_batch(plan, catalog, requests, cancel)
    }

    /// [`CachedEngine::explain_batch_cancellable`] without a token.
    pub fn explain_batch(
        &self,
        catalog: &Catalog,
        requests: &[ExplainRequest],
    ) -> Vec<Explanation> {
        self.explain_batch_cancellable(catalog, requests, &CancelToken::new())
            .expect("uncancelled batch cannot be cancelled")
    }

    /// Invalidate every cached answer computed against `table`'s contents
    /// — call when a table is reloaded or re-registered. Entries die
    /// lazily on next lookup (counted as stale drops). Note that a reload
    /// that *changes* contents also changes the fingerprint, so its old
    /// entries become unreachable even without invalidation; invalidating
    /// handles the same-contents-reloaded case and frees lookups from
    /// trusting unreachable entries' memory.
    pub fn invalidate_table(&self, table: &Table) {
        self.cache.invalidate(table.content_fingerprint());
    }

    /// Invalidate by raw content fingerprint (when the table is gone).
    pub fn invalidate_fingerprint(&self, fingerprint: u64) {
        self.cache.invalidate(fingerprint);
    }

    /// The answer cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The wrapped engine's stats snapshot with the answer-cache counters
    /// filled in (a bare [`Engine::stats`] reports them all-zero).
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.engine.stats();
        stats.answer_cache = self.cache.stats();
        stats
    }
}

/// How one batch item will be answered (see [`CachedEngine::plan_batch`]).
enum BatchSlot {
    /// Answered from the cache at plan time.
    Hit(CachedAnswer),
    /// Needs execution: index into the plan's deduplicated pending list.
    Pending(usize),
    /// The catalog has no such table; answered with an error.
    UnknownTable,
}

/// A planned batch: per-item resolutions plus the deduplicated set of
/// cache keys that still need the engine.
pub struct BatchPlan {
    slots: Vec<BatchSlot>,
    pending: Vec<(CacheKey, usize)>,
}

impl BatchPlan {
    /// Deduplicated cache misses that will actually execute.
    pub fn missing(&self) -> usize {
        self.pending.len()
    }

    /// Whether every item resolved without execution (hits and unknown
    /// tables) — such a batch can skip execution admission entirely.
    pub fn is_fully_cached(&self) -> bool {
        self.pending.is_empty()
    }

    /// Request indices (into the planned batch) that still execute, one
    /// per deduplicated miss — serving layers derive the set of tables
    /// that need admission tokens from these.
    pub fn pending_request_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.pending.iter().map(|&(_, index)| index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtq_table::samples;

    fn cached_engine() -> CachedEngine {
        CachedEngine::with_capacity(Arc::new(Engine::new()), 256)
    }

    #[test]
    fn cached_engine_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CachedEngine>();
    }

    #[test]
    fn repeat_question_hits_and_matches_fresh_execution() {
        let cached = cached_engine();
        let table = samples::olympics();
        let question = "Greece held its last Olympics in what year?";
        let first = cached.explain_question(question, &table, 7);
        let second = cached.explain_question(question, &table, 7);
        assert!(
            Arc::ptr_eq(&first, &second),
            "second answer is the cached Arc"
        );
        let fresh = cached.engine().explain_question(question, &table, 7);
        assert_eq!(first.len(), fresh.len());
        for (a, b) in first.iter().zip(&fresh) {
            assert_eq!(a.formula, b.formula);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
            assert_eq!(a.answer, b.answer);
            assert_eq!(a.utterance, b.utterance);
            assert_eq!(a.sql, b.sql);
        }
        let stats = cached.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.insertions, 1);
    }

    #[test]
    fn variant_phrasings_share_one_entry() {
        let cached = cached_engine();
        let table = samples::olympics();
        let a = cached.explain_question("Which city hosted in 2008?", &table, 3);
        let b = cached.explain_question("  which CITY hosted in 2008  ", &table, 3);
        assert!(Arc::ptr_eq(&a, &b), "normalized variants share the entry");
        assert_eq!(cached.cache_stats().insertions, 1);
        // A different top_k is a different answer.
        let c = cached.explain_question("Which city hosted in 2008?", &table, 1);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn distinct_contents_never_alias_even_with_equal_shape() {
        let cached = cached_engine();
        let table = samples::olympics();
        // Same shape (headers, types, record count), one cell different.
        let edited = Table::from_rows(
            "olympics",
            &["Year", "Country", "City"],
            &[
                vec!["1896", "Greece", "Athens"],
                vec!["1900", "France", "Paris"],
                vec!["1904", "USA", "St. Louis"],
                vec!["1908", "UK", "London"],
                vec!["2000", "Australia", "Sydney"],
                vec!["2004", "Greece", "Athens"],
                vec!["2008", "China", "Shanghai"],
                vec!["2012", "UK", "London"],
                vec!["2016", "Brazil", "Rio de Janeiro"],
            ],
        )
        .unwrap();
        assert_eq!(table.fingerprint(), edited.fingerprint());
        let question = "Which city hosted in 2008?";
        let original = cached.explain_question(question, &table, 1);
        let changed = cached.explain_question(question, &edited, 1);
        assert_eq!(cached.cache_stats().insertions, 2, "two distinct entries");
        assert_ne!(original[0].answer, changed[0].answer);
    }

    #[test]
    fn invalidate_table_drops_its_entries_only() {
        let cached = cached_engine();
        let olympics = samples::olympics();
        let medals = samples::medals();
        cached.explain_question("Which city hosted in 2008?", &olympics, 3);
        cached.explain_question("total Gold of Fiji?", &medals, 3);
        cached.invalidate_table(&olympics);
        let key = cached.key_for("Which city hosted in 2008?", &olympics, Some(3));
        assert!(cached.lookup(&key).is_none(), "invalidated entry gone");
        let kept = cached.key_for("total Gold of Fiji?", &medals, Some(3));
        assert!(cached.lookup(&kept).is_some(), "other table unaffected");
        assert_eq!(cached.cache_stats().stale_drops, 1);
    }

    #[test]
    fn batch_plan_dedupes_and_batch_matches_uncached() {
        let cached = cached_engine();
        let catalog: Catalog = [samples::olympics(), samples::medals()]
            .into_iter()
            .collect();
        let requests = vec![
            ExplainRequest::new("Which city hosted in 2008?", "olympics"),
            ExplainRequest::new("which city hosted in 2008", "olympics"),
            ExplainRequest::new("total Gold of Fiji?", "medals"),
            ExplainRequest::new("anything", "no-such-table"),
        ];
        let plan = cached.plan_batch(&catalog, &requests);
        assert_eq!(plan.missing(), 2, "duplicate phrasing executes once");
        assert!(!plan.is_fully_cached());
        let cancel = CancelToken::new();
        let explanations = cached
            .execute_batch(plan, &catalog, &requests, &cancel)
            .unwrap();
        let uncached = cached.engine().explain_batch(&catalog, &requests);
        assert_eq!(explanations.len(), uncached.len());
        for (a, b) in explanations.iter().zip(&uncached) {
            assert_eq!(a.question, b.question);
            assert_eq!(a.table, b.table);
            assert_eq!(a.error, b.error);
            assert_eq!(a.candidates.len(), b.candidates.len());
            for (x, y) in a.candidates.iter().zip(&b.candidates) {
                assert_eq!(x.formula, y.formula);
                assert_eq!(x.utterance, y.utterance);
                assert_eq!(x.sql, y.sql);
            }
        }
        // Replaying the same batch is now fully cached (the unknown table
        // stays an error slot, not an execution).
        let replay = cached.plan_batch(&catalog, &requests);
        assert!(replay.is_fully_cached());
        let again = cached
            .execute_batch(replay, &catalog, &requests, &cancel)
            .unwrap();
        assert_eq!(again.len(), explanations.len());
        assert!(again[3].error.as_deref().unwrap().contains("no-such-table"));
    }

    #[test]
    fn stats_carry_answer_cache_counters() {
        let cached = cached_engine();
        let table = samples::olympics();
        cached.explain_question("Which city hosted in 2008?", &table, 3);
        cached.explain_question("Which city hosted in 2008?", &table, 3);
        let stats = cached.stats();
        assert_eq!(stats.answer_cache.hits, 1);
        assert_eq!(stats.answer_cache.insertions, 1);
        assert!(stats.answer_cache.capacity > 0);
        // A bare engine reports the field all-zero.
        assert_eq!(
            cached.engine().stats().answer_cache,
            wtq_cache::CacheStats::default()
        );
    }
}
