//! The explanation pipeline: question → candidates → explanations.
//!
//! This is the deployment path of Figure 2: the semantic parser produces
//! candidate queries, and for each candidate the system generates (1) a
//! detailed NL utterance, (2) provenance-based highlights over the table and
//! (3) the SQL form of the query. The explained candidates are what the
//! interface shows to a non-expert user for selection, and what the simulated
//! user of `wtq-study` consumes.

use wtq_dcs::{Answer, Formula};
use wtq_explain::utter;
use wtq_parser::{Candidate, SemanticParser};
use wtq_provenance::{render, sample_highlights, Highlights};
use wtq_sql::translate;
use wtq_table::Table;

use crate::engine::Engine;

/// One candidate query together with all of its explanations.
#[derive(Debug, Clone)]
pub struct ExplainedCandidate {
    /// The candidate lambda DCS formula.
    pub formula: Formula,
    /// The parser's score for the candidate.
    pub score: f64,
    /// The candidate's answer on the table.
    pub answer: Answer,
    /// The NL utterance explaining the query (§5.1).
    pub utterance: String,
    /// The SQL rendering of the query (Table 10), when the formula falls in
    /// the translatable fragment.
    pub sql: Option<String>,
    /// Provenance-based highlights (§5.2).
    pub highlights: Highlights,
}

impl ExplainedCandidate {
    /// Explain one parsed candidate: attach the utterance, the SQL rendering
    /// and the provenance highlights. `None` when highlight computation
    /// fails (the candidate does not evaluate on `table`).
    pub(crate) fn from_candidate(candidate: Candidate, table: &Table) -> Option<Self> {
        let highlights = Highlights::compute(&candidate.formula, table).ok()?;
        Some(ExplainedCandidate {
            utterance: utter(&candidate.formula),
            sql: translate(&candidate.formula).ok().map(|q| q.to_sql()),
            highlights,
            formula: candidate.formula,
            score: candidate.score,
            answer: candidate.answer,
        })
    }

    /// Explain a handwritten formula (score 0, answer from evaluation).
    pub(crate) fn from_formula(formula: &Formula, table: &Table) -> wtq_dcs::Result<Self> {
        let denotation = wtq_dcs::eval(formula, table)?;
        let highlights = Highlights::compute(formula, table)?;
        Ok(ExplainedCandidate {
            utterance: utter(formula),
            sql: translate(formula).ok().map(|q| q.to_sql()),
            highlights,
            formula: formula.clone(),
            score: 0.0,
            answer: Answer::from_denotation(&denotation),
        })
    }

    /// Plain-text rendering of the highlighted table (optionally sampled to a
    /// few rows for large tables, §5.3).
    pub fn render_highlights(&self, table: &Table, sampled: bool) -> String {
        if sampled {
            let sampled = sample_highlights(&self.formula, table, &self.highlights);
            render::render_text(&sampled.table, &sampled.highlights)
        } else {
            render::render_text(table, &self.highlights)
        }
    }
}

/// The end-to-end explanation pipeline — now a thin single-threaded wrapper
/// over a one-worker [`Engine`], kept so existing callers and tests keep
/// their familiar entry points. New code (and anything serving concurrent
/// traffic) should hold an [`Engine`] directly and open [`crate::Session`]s
/// per request.
#[derive(Debug, Clone, Default)]
pub struct ExplanationPipeline {
    engine: Engine,
}

impl ExplanationPipeline {
    /// A pipeline around the baseline (prior-weighted) parser.
    pub fn new() -> Self {
        ExplanationPipeline {
            engine: Engine::new(),
        }
    }

    /// A pipeline around an already-trained parser.
    pub fn with_parser(parser: SemanticParser) -> Self {
        ExplanationPipeline {
            engine: Engine::with_parser(parser),
        }
    }

    /// The semantic parser used to produce candidates.
    pub fn parser(&self) -> &SemanticParser {
        self.engine.parser()
    }

    /// The shared engine backing this pipeline.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Unwrap into the backing engine (e.g. to share it across threads).
    pub fn into_engine(self) -> Engine {
        self.engine
    }

    /// Parse `question` over `table` and explain the top-k candidates.
    pub fn explain_question(
        &self,
        question: &str,
        table: &Table,
        top_k: usize,
    ) -> Vec<ExplainedCandidate> {
        self.engine.explain_question(question, table, top_k)
    }

    /// Explain a single, already-known formula (used when a query is written
    /// by hand rather than parsed from a question).
    pub fn explain_formula(
        &self,
        formula: &Formula,
        table: &Table,
    ) -> wtq_dcs::Result<ExplainedCandidate> {
        self.engine.explain_formula(formula, table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtq_dcs::parse_formula;
    use wtq_table::samples;

    #[test]
    fn explains_the_figure_one_question_end_to_end() {
        let pipeline = ExplanationPipeline::new();
        let table = samples::olympics();
        let explained =
            pipeline.explain_question("Greece held its last Olympics in what year?", &table, 7);
        assert!(!explained.is_empty());
        assert!(explained.len() <= 7);
        // The gold query is among the explained candidates, with utterance,
        // SQL and highlights attached.
        let gold = parse_formula("max(R[Year].Country.Greece)").unwrap();
        let gold_candidate = explained
            .iter()
            .find(|c| wtq_parser::formulas_equivalent(&c.formula, &gold))
            .expect("gold candidate explained");
        assert_eq!(
            gold_candidate.utterance,
            "maximum of values in column Year in rows where value of column Country is Greece"
        );
        assert!(gold_candidate
            .sql
            .as_deref()
            .unwrap_or("")
            .contains("MAX(Year)"));
        assert_eq!(gold_candidate.answer, Answer::number(2004.0));
        let rendering = gold_candidate.render_highlights(&table, false);
        assert!(rendering.contains("MAX(Year)"));
        assert!(rendering.contains("(Greece)"));
    }

    #[test]
    fn explain_formula_works_for_handwritten_queries() {
        let pipeline = ExplanationPipeline::new();
        let table = samples::medals();
        let formula = parse_formula("sub(R[Total].Nation.Fiji, R[Total].Nation.Tonga)").unwrap();
        let explained = pipeline.explain_formula(&formula, &table).unwrap();
        assert_eq!(explained.answer, Answer::number(110.0));
        assert!(explained
            .utterance
            .contains("difference in values of column Total"));
        let sampled = explained.render_highlights(&table, true);
        assert!(
            sampled.lines().count() <= 6,
            "sampled rendering too large:\n{sampled}"
        );
        // Errors propagate for formulas that do not evaluate.
        let bad = parse_formula("R[Missing].Nation.Fiji").unwrap();
        assert!(pipeline.explain_formula(&bad, &table).is_err());
    }

    #[test]
    fn candidates_are_ranked_by_score() {
        let pipeline = ExplanationPipeline::new();
        let table = samples::shipwrecks();
        let explained = pipeline.explain_question(
            "How many more ships were wrecked in Lake Huron than in Lake Erie?",
            &table,
            5,
        );
        for pair in explained.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }
}
