//! # wtq-explain
//!
//! Query-to-utterance explanations (§5.1, Table 3, Figure 3).
//!
//! The paper converts each candidate lambda DCS query into a detailed natural
//! language utterance by augmenting the parser's context-free grammar: the
//! right-hand side of each deduction rule carries an NL template, and the
//! utterance of a formula is read off the yield of its derivation tree. This
//! crate reproduces that mechanism:
//!
//! * [`grammar`] — the rule catalogue of Table 3: one NL template per lambda
//!   DCS operator (plus the special-cased difference phrasings),
//! * [`derive`] — construction of the [`derive::DerivationNode`] tree for a
//!   formula (the right-hand tree of Figure 3) and the utterance read off its
//!   yield,
//! * [`utter`] — the one-call convenience API used everywhere else in the
//!   workspace.
//!
//! Utterances are deliberately verbose ("maximum of values in column Year in
//! rows where value of column Country is Greece"): the paper accepts the
//! clumsy syntax in exchange for making the query semantics unambiguous to a
//! non-expert.

pub mod derive;
pub mod grammar;

pub use derive::{derivation, DerivationNode};
pub use grammar::{rule_catalogue, GrammarRule};

use wtq_dcs::Formula;

/// Generate the NL utterance explaining `formula`.
///
/// ```
/// use wtq_dcs::parse_formula;
/// let q = parse_formula("max(R[Year].Country.Greece)").unwrap();
/// assert_eq!(
///     wtq_explain::utter(&q),
///     "maximum of values in column Year in rows where value of column Country is Greece"
/// );
/// ```
pub fn utter(formula: &Formula) -> String {
    derivation(formula).utterance()
}
