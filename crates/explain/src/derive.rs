//! Derivation trees and utterance realization (Figure 3).
//!
//! A [`DerivationNode`] mirrors the right-hand tree of Figure 3: each node
//! records the grammar category it derives, the rule applied, the utterance
//! fragment produced so far, and its children. The utterance of the whole
//! formula is the text of the root node; [`DerivationNode::render_tree`]
//! draws the tree for documentation and the experiments binary.

use wtq_dcs::{AggregateOp, CompareOp, Formula, SuperlativeOp};

use crate::grammar::Category;

/// One node of the utterance derivation tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivationNode {
    /// Grammar category of the derived phrase.
    pub category: Category,
    /// Name of the grammar rule applied (see [`crate::grammar`]).
    pub rule: &'static str,
    /// The utterance fragment derived at this node.
    pub text: String,
    /// Child derivations, left to right.
    pub children: Vec<DerivationNode>,
}

impl DerivationNode {
    fn leaf(category: Category, rule: &'static str, text: impl Into<String>) -> Self {
        DerivationNode {
            category,
            rule,
            text: text.into(),
            children: Vec::new(),
        }
    }

    /// The utterance derived by this (sub)tree.
    pub fn utterance(&self) -> String {
        self.text.clone()
    }

    /// Number of nodes in the derivation tree.
    pub fn size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(DerivationNode::size)
            .sum::<usize>()
    }

    /// Render the derivation as an indented tree (the textual analogue of
    /// Figure 3(b)).
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!("({}) {}\n", self.category.name(), self.text));
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

/// Build the derivation tree (and thereby the utterance) of a formula.
pub fn derivation(formula: &Formula) -> DerivationNode {
    match formula {
        Formula::Const(value) => {
            DerivationNode::leaf(Category::Entity, "entity", value.to_string())
        }
        Formula::AllRecords => DerivationNode::leaf(Category::Records, "all_records", "rows"),
        Formula::Join { column, values } => {
            let values_node = derivation(values);
            let text = format!(
                "rows where value of column {column} is {}",
                values_node.text
            );
            DerivationNode {
                category: Category::Records,
                rule: "join",
                text,
                children: vec![binary_node(column), values_node],
            }
        }
        Formula::CompareJoin { column, op, value } => {
            let value_node = derivation(value);
            let text = format!(
                "rows where values of column {column} are {} {}",
                compare_phrase(*op),
                value_node.text
            );
            DerivationNode {
                category: Category::Records,
                rule: "comparison",
                text,
                children: vec![binary_node(column), value_node],
            }
        }
        Formula::ColumnValues { column, records } => {
            let records_node = derivation(records);
            let text = format!("values in column {column} in {}", records_node.text);
            DerivationNode {
                category: Category::Values,
                rule: "column_values",
                text,
                children: vec![binary_node(column), records_node],
            }
        }
        Formula::Prev(records) => {
            let records_node = derivation(records);
            let text = format!("rows right above {}", records_node.text);
            DerivationNode {
                category: Category::Records,
                rule: "prev",
                text,
                children: vec![records_node],
            }
        }
        Formula::Next(records) => {
            let records_node = derivation(records);
            let text = format!("rows right below {}", records_node.text);
            DerivationNode {
                category: Category::Records,
                rule: "next",
                text,
                children: vec![records_node],
            }
        }
        Formula::Intersect(a, b) => {
            let left = derivation(a);
            let right = derivation(b);
            // "rows where ... is London and also where ... is UK" (Table 3):
            // drop the second operand's leading "rows " for readability.
            let right_text = right
                .text
                .strip_prefix("rows ")
                .unwrap_or(&right.text)
                .to_string();
            let text = format!("{} and also {}", left.text, right_text);
            DerivationNode {
                category: Category::Records,
                rule: "intersection",
                text,
                children: vec![left, right],
            }
        }
        Formula::Union(a, b) => {
            let left = derivation(a);
            let right = derivation(b);
            let category = if left.category == Category::Records {
                Category::Records
            } else {
                Category::Values
            };
            let text = format!("{} or {}", left.text, right.text);
            DerivationNode {
                category,
                rule: "union",
                text,
                children: vec![left, right],
            }
        }
        Formula::Aggregate { op, sub } => {
            let sub_node = derivation(sub);
            let text = match op {
                AggregateOp::Count => format!("the number of {}", sub_node.text),
                _ => format!("{} of {}", aggregate_phrase(*op), sub_node.text),
            };
            let rule = if *op == AggregateOp::Count {
                "count"
            } else {
                "aggregate"
            };
            DerivationNode {
                category: Category::Entity,
                rule,
                text,
                children: vec![sub_node],
            }
        }
        Formula::SuperlativeRecords {
            op,
            records,
            column,
        } => {
            let records_node = derivation(records);
            let text = format!(
                "{} that have the {} value in column {column}",
                records_node.text,
                superlative_phrase(*op)
            );
            DerivationNode {
                category: Category::Records,
                rule: "superlative_records",
                text,
                children: vec![records_node, binary_node(column)],
            }
        }
        Formula::RecordIndexSuperlative { op, records } => {
            let records_node = derivation(records);
            let position = match op {
                SuperlativeOp::Argmax => "last",
                SuperlativeOp::Argmin => "first",
            };
            let text = format!("where it is the {position} row in {}", records_node.text);
            DerivationNode {
                category: Category::Records,
                rule: "index_superlative",
                text,
                children: vec![records_node],
            }
        }
        Formula::MostCommonValue { op, values, column } => {
            let values_node = derivation(values);
            let frequency = match op {
                SuperlativeOp::Argmax => "most",
                SuperlativeOp::Argmin => "least",
            };
            let text = format!(
                "the value of {} that appears the {frequency} in column {column}",
                values_node.text
            );
            DerivationNode {
                category: Category::Values,
                rule: "most_common",
                text,
                children: vec![values_node, binary_node(column)],
            }
        }
        Formula::CompareValues {
            op,
            values,
            key_column,
            value_column,
        } => {
            let values_node = derivation(values);
            let text = format!(
                "between {}, who has the {} value of column {key_column} out of the values in {value_column}",
                values_node.text,
                superlative_phrase(*op)
            );
            DerivationNode {
                category: Category::Values,
                rule: "compare_values",
                text,
                children: vec![
                    values_node,
                    binary_node(key_column),
                    binary_node(value_column),
                ],
            }
        }
        Formula::Sub(a, b) => difference_derivation(a, b),
    }
}

/// Difference queries get the two dedicated Table 3 phrasings when their
/// operands have the canonical shapes, and a generic phrasing otherwise.
fn difference_derivation(a: &Formula, b: &Formula) -> DerivationNode {
    // Difference of values: sub(R[C1].C2.v, R[C1].C2.u).
    if let (Some((c1a, c2a, va)), Some((c1b, c2b, vb))) = (projected_join(a), projected_join(b)) {
        if c1a.eq_ignore_ascii_case(c1b) && c2a.eq_ignore_ascii_case(c2b) {
            let left = derivation(a);
            let right = derivation(b);
            let text = format!(
                "difference in values of column {c1a} between rows where value of column {c2a} is {va} and {vb}"
            );
            return DerivationNode {
                category: Category::Values,
                rule: "difference_values",
                text,
                children: vec![left, right],
            };
        }
    }
    // Difference of occurrences: sub(count(C.v), count(C.u)).
    if let (Some((ca, va)), Some((cb, vb))) = (counted_join(a), counted_join(b)) {
        if ca.eq_ignore_ascii_case(cb) {
            let left = derivation(a);
            let right = derivation(b);
            let text = format!(
                "in column {ca}, what is the difference between rows with value {va} and rows with value {vb}"
            );
            return DerivationNode {
                category: Category::Values,
                rule: "difference_occurrences",
                text,
                children: vec![left, right],
            };
        }
    }
    let left = derivation(a);
    let right = derivation(b);
    let text = format!("the difference between {} and {}", left.text, right.text);
    DerivationNode {
        category: Category::Values,
        rule: "difference_values",
        text,
        children: vec![left, right],
    }
}

/// Match `R[C1].C2.v` and return `(C1, C2, v)`.
fn projected_join(formula: &Formula) -> Option<(&str, &str, String)> {
    if let Formula::ColumnValues {
        column: c1,
        records,
    } = formula
    {
        if let Formula::Join { column: c2, values } = records.as_ref() {
            if let Formula::Const(value) = values.as_ref() {
                return Some((c1, c2, value.to_string()));
            }
        }
    }
    None
}

/// Match `count(C.v)` and return `(C, v)`.
fn counted_join(formula: &Formula) -> Option<(&str, String)> {
    if let Formula::Aggregate {
        op: AggregateOp::Count,
        sub,
    } = formula
    {
        if let Formula::Join { column, values } = sub.as_ref() {
            if let Formula::Const(value) = values.as_ref() {
                return Some((column, value.to_string()));
            }
        }
    }
    None
}

fn binary_node(column: &str) -> DerivationNode {
    DerivationNode::leaf(Category::Binary, "binary", column.to_string())
}

fn compare_phrase(op: CompareOp) -> &'static str {
    match op {
        CompareOp::Gt => "more than",
        CompareOp::Geq => "at least",
        CompareOp::Lt => "less than",
        CompareOp::Leq => "at most",
        CompareOp::Neq => "different from",
    }
}

fn aggregate_phrase(op: AggregateOp) -> &'static str {
    match op {
        AggregateOp::Count => "the number",
        AggregateOp::Max => "maximum",
        AggregateOp::Min => "minimum",
        AggregateOp::Sum => "sum",
        AggregateOp::Avg => "average",
    }
}

fn superlative_phrase(op: SuperlativeOp) -> &'static str {
    match op {
        SuperlativeOp::Argmax => "highest",
        SuperlativeOp::Argmin => "lowest",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utter;
    use wtq_dcs::parse_formula;

    fn utterance_of(text: &str) -> String {
        utter(&parse_formula(text).unwrap())
    }

    #[test]
    fn example_5_1_figure_one_utterance() {
        assert_eq!(
            utterance_of("R[Year].Country.Greece"),
            "values in column Year in rows where value of column Country is Greece"
        );
        assert_eq!(
            utterance_of("max(R[Year].Country.Greece)"),
            "maximum of values in column Year in rows where value of column Country is Greece"
        );
    }

    #[test]
    fn table_3_examples() {
        assert_eq!(
            utterance_of("count(City.Athens)"),
            "the number of rows where value of column City is Athens"
        );
        assert_eq!(
            utterance_of("(City.London and Country.UK)"),
            "rows where value of column City is London and also where value of column Country is UK"
        );
        assert_eq!(
            utterance_of("argmax(Rows, Year)"),
            "rows that have the highest value in column Year"
        );
        assert_eq!(
            utterance_of("last(City.Athens)"),
            "where it is the last row in rows where value of column City is Athens"
        );
        assert_eq!(
            utterance_of("most_common((Athens or London), City)"),
            "the value of Athens or London that appears the most in column City"
        );
        assert_eq!(
            utterance_of("Games.(> 4)"),
            "rows where values of column Games are more than 4"
        );
        assert_eq!(utterance_of("(China or Greece)"), "China or Greece");
        assert_eq!(
            utterance_of("R[City].Prev.City.Athens"),
            "values in column City in rows right above rows where value of column City is Athens"
        );
        assert_eq!(
            utterance_of("R[City].R[Prev].City.Athens"),
            "values in column City in rows right below rows where value of column City is Athens"
        );
    }

    #[test]
    fn difference_phrasings() {
        // Figure 6 / Example 5.2.
        assert_eq!(
            utterance_of("sub(R[Total].Nation.Fiji, R[Total].Nation.Tonga)"),
            "difference in values of column Total between rows where value of column Nation is Fiji and Tonga"
        );
        // Figure 9 / Table 18.
        assert_eq!(
            utterance_of("sub(count(Lake.\"Lake Huron\"), count(Lake.\"Lake Erie\"))"),
            "in column Lake, what is the difference between rows with value Lake Huron and rows with value Lake Erie"
        );
        // Generic fallback for mismatched shapes.
        let generic = utterance_of("sub(max(R[Year].Rows), min(R[Year].Rows))");
        assert!(generic.starts_with("the difference between"));
    }

    #[test]
    fn compare_values_utterance_matches_figure_five() {
        assert_eq!(
            utterance_of("compare_max((London or Beijing), Year, City)"),
            "between London or Beijing, who has the highest value of column Year out of the values in City"
        );
        assert_eq!(
            utterance_of("compare_min((\"Myriam Asfry\" or \"Tatiana Abramenko\"), Age, Candidate)"),
            "between Myriam Asfry or Tatiana Abramenko, who has the lowest value of column Age out of the values in Candidate"
        );
    }

    #[test]
    fn figure_8_incorrect_candidate_utterance() {
        assert_eq!(
            utterance_of("min(R[Year].argmax(Rows, \"Open Cup\"))"),
            "minimum of values in column Year in rows that have the highest value in column Open Cup"
        );
    }

    #[test]
    fn comparison_phrases_cover_all_operators() {
        assert!(utterance_of("Games.(>= 5)").contains("at least 5"));
        assert!(utterance_of("Games.(<= 17)").contains("at most 17"));
        assert!(utterance_of("Games.(< 17)").contains("less than 17"));
        assert!(utterance_of("Games.(!= 3)").contains("different from 3"));
    }

    #[test]
    fn derivation_tree_matches_figure_three() {
        let formula = parse_formula("max(R[Year].Country.Greece)").unwrap();
        let tree = derivation(&formula);
        // Root is the aggregate (Entity), its child the projection (Values),
        // below that the join (Records) and the constant (Entity).
        assert_eq!(tree.category, Category::Entity);
        assert_eq!(tree.rule, "aggregate");
        assert_eq!(tree.children.len(), 1);
        let projection = &tree.children[0];
        assert_eq!(projection.category, Category::Values);
        assert_eq!(projection.children[0].category, Category::Binary);
        let join = &projection.children[1];
        assert_eq!(join.category, Category::Records);
        assert_eq!(join.children[1].category, Category::Entity);
        assert_eq!(join.children[1].text, "Greece");
        // The rendered tree names categories like Figure 3.
        let rendered = tree.render_tree();
        assert!(rendered.contains("(Entity) maximum of values in column Year"));
        assert!(rendered.contains("(Records) rows where value of column Country is Greece"));
        assert!(tree.size() >= 5);
    }

    #[test]
    fn utterances_are_distinct_for_distinct_queries() {
        // The two §5.2 queries share highlights but must differ in utterance.
        let a = utterance_of("Games.(> 4)");
        let b = utterance_of("(Games.(>= 5) and Games.(< 17))");
        assert_ne!(a, b);
        assert_eq!(
            b,
            "rows where values of column Games are at least 5 and also where values of column Games are less than 17"
        );
    }

    #[test]
    fn aggregate_phrases() {
        assert!(
            utterance_of("sum(R[Year].City.Athens)").starts_with("sum of values in column Year")
        );
        assert!(utterance_of("avg(R[Year].City.Athens)")
            .starts_with("average of values in column Year"));
        assert!(utterance_of("min(R[Year].Rows)")
            .starts_with("minimum of values in column Year in rows"));
    }
}
