//! The utterance grammar of Table 3.
//!
//! The paper augments each deduction rule of the semantic parser's CFG with a
//! natural-language template; the utterance of a formula is the yield of its
//! derivation under these templates. This module holds the rule catalogue as
//! data — the templates themselves are applied by [`crate::derive`] — so the
//! rules can be listed, documented and printed by the experiments binary
//! (reproducing Table 3).

/// Syntactic category of a grammar symbol (the non-terminals of Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// A constant value (table cell content or literal).
    Entity,
    /// A set of values.
    Values,
    /// A set of table records.
    Records,
    /// A column header used as a binary relation.
    Binary,
}

impl Category {
    /// Display name matching Figure 3.
    pub fn name(self) -> &'static str {
        match self {
            Category::Entity => "Entity",
            Category::Values => "Values",
            Category::Records => "Records",
            Category::Binary => "Binary",
        }
    }
}

/// One grammar rule augmented with its NL template (a row of Table 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrammarRule {
    /// Stable identifier used by derivation nodes.
    pub name: &'static str,
    /// Category produced by the rule.
    pub category: Category,
    /// The rule's right-hand side with NL phrases, non-terminals in braces.
    pub template: &'static str,
    /// An example utterance, matching the examples column of Table 3.
    pub example: &'static str,
}

/// The catalogue of utterance rules (Table 3 plus the handful of extra
/// operators of Table 10 that Table 3 elides).
pub fn rule_catalogue() -> Vec<GrammarRule> {
    vec![
        GrammarRule {
            name: "entity",
            category: Category::Values,
            template: "{Entity}",
            example: "Athens.",
        },
        GrammarRule {
            name: "comparison",
            category: Category::Records,
            template: "rows where values of column {Binary} are {cmp} {Entity}",
            example: "rows where values of column Games are more than 4.",
        },
        GrammarRule {
            name: "join",
            category: Category::Records,
            template: "rows where value of column {Binary} is {Values}",
            example: "rows where value in column City is Athens or London.",
        },
        GrammarRule {
            name: "column_values",
            category: Category::Values,
            template: "values in column {Binary} in {Records}",
            example: "values of column Year in rows where value of column City is Athens.",
        },
        GrammarRule {
            name: "prev",
            category: Category::Records,
            template: "rows right above {Records}",
            example: "right above rows where value of column City is Athens.",
        },
        GrammarRule {
            name: "next",
            category: Category::Records,
            template: "rows right below {Records}",
            example: "right below rows where value of column City is Athens.",
        },
        GrammarRule {
            name: "count",
            category: Category::Entity,
            template: "the number of {Records}",
            example: "the number of rows where value of column City is Athens.",
        },
        GrammarRule {
            name: "aggregate",
            category: Category::Entity,
            template: "{aggr} of {Values}",
            example: "maximum of values in column Year in rows where value of column City is Athens.",
        },
        GrammarRule {
            name: "difference_values",
            category: Category::Values,
            template: "difference in values of column {Binary} between rows where value of column {Binary} is {Values} and {Values}",
            example: "difference in values of column Year between rows where values of column City is London and Beijing.",
        },
        GrammarRule {
            name: "difference_occurrences",
            category: Category::Values,
            template: "in column {Binary}, what is the difference between rows with value {Entity} and rows with value {Entity}",
            example: "in column City, what is the difference between rows with value Athens and rows with value London.",
        },
        GrammarRule {
            name: "union",
            category: Category::Values,
            template: "{Values} or {Values}",
            example: "China or Greece.",
        },
        GrammarRule {
            name: "intersection",
            category: Category::Records,
            template: "{Records} and also {Records}",
            example: "rows where value of column City is London and also where value of column Country is UK.",
        },
        GrammarRule {
            name: "superlative_records",
            category: Category::Records,
            template: "{Records} that have the {highest|lowest} value in column {Binary}",
            example: "rows that have the highest value in column Year.",
        },
        GrammarRule {
            name: "index_superlative",
            category: Category::Records,
            template: "where it is the {last|first} row in {Records}",
            example: "where it is the last row in rows where value of column City is Athens.",
        },
        GrammarRule {
            name: "most_common",
            category: Category::Values,
            template: "the value of {Values} that appears the {most|least} in column {Binary}",
            example: "the value of Athens or London that appears the most in column City.",
        },
        GrammarRule {
            name: "compare_values",
            category: Category::Values,
            template: "between {Values}, who has the {highest|lowest} value of column {Binary} out of the values in {Binary}",
            example: "between London or Beijing who has the highest value of column Year.",
        },
        GrammarRule {
            name: "all_records",
            category: Category::Records,
            template: "rows",
            example: "rows.",
        },
    ]
}

/// Look up a rule by its stable name.
pub fn rule(name: &str) -> Option<GrammarRule> {
    rule_catalogue().into_iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_covers_every_operator_family() {
        let names: Vec<&str> = rule_catalogue().iter().map(|r| r.name).collect();
        for required in [
            "join",
            "column_values",
            "prev",
            "next",
            "count",
            "aggregate",
            "difference_values",
            "difference_occurrences",
            "union",
            "intersection",
            "superlative_records",
            "index_superlative",
            "most_common",
            "compare_values",
            "comparison",
        ] {
            assert!(names.contains(&required), "missing rule {required}");
        }
    }

    #[test]
    fn rule_names_are_unique_and_templates_nonempty() {
        let catalogue = rule_catalogue();
        let mut names: Vec<&str> = catalogue.iter().map(|r| r.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
        for rule in &catalogue {
            assert!(!rule.template.is_empty());
            assert!(!rule.example.is_empty());
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(rule("join").unwrap().category, Category::Records);
        assert!(rule("nonexistent").is_none());
        assert_eq!(Category::Values.name(), "Values");
    }
}
