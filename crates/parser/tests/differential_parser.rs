//! Differential suite: the interned feature pipeline must be byte-identical
//! to the string-keyed reference (`wtq_parser::reference`) — the executable
//! specification of the pre-interning parser.
//!
//! Three properties over random tables and questions:
//!
//! 1. End-to-end parses agree: same candidate order, bit-equal scores, and
//!    feature vectors whose named view equals the reference map bit for bit.
//! 2. The top-k serving path agrees (the list users see is unchanged).
//! 3. AdaGrad training produces byte-identical weights, including their
//!    serialized form (trained-model files are interchangeable).

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wtq_dataset::{all_domains, generate_questions, generate_table};
use wtq_dcs::Evaluator;
use wtq_parser::reference::{parse_in_session_reference, ReferenceModel, ReferenceTrainer};
use wtq_parser::{LogLinearModel, SemanticParser, TrainConfig, TrainExample, Trainer};
use wtq_table::{Catalog, Table};

/// A random synthetic table plus a batch of questions about it, all derived
/// from one seed (the proptest-generated value).
fn environment(seed: u64, questions: usize) -> (Table, Vec<String>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let domains = all_domains();
    let domain = &domains[(seed % domains.len() as u64) as usize];
    let table = generate_table(domain, seed as usize, &mut rng);
    let questions = generate_questions(&table, questions, &mut rng)
        .into_iter()
        .map(|q| q.question)
        .collect();
    (table, questions)
}

/// Assert one interned parse equals the reference parse bit for bit.
fn assert_parse_matches(
    parser: &SemanticParser,
    reference: &ReferenceModel,
    question: &str,
    table: &Table,
) -> Result<(), TestCaseError> {
    let evaluator = Evaluator::new(table);
    let interned = parser.parse_in_session(question, &evaluator);
    let expected = parse_in_session_reference(reference, &parser.config, question, &evaluator);
    prop_assert_eq!(interned.len(), expected.len(), "candidate pool size");
    for (rank, (got, want)) in interned.iter().zip(&expected).enumerate() {
        prop_assert_eq!(&got.formula, &want.formula, "formula at rank {}", rank);
        prop_assert_eq!(&got.answer, &want.answer, "answer at rank {}", rank);
        prop_assert_eq!(
            got.score.to_bits(),
            want.score.to_bits(),
            "score bits at rank {} ({} vs {})",
            rank,
            got.score,
            want.score
        );
        let named = got.features.to_named();
        prop_assert_eq!(
            named.keys().collect::<Vec<_>>(),
            want.features.keys().collect::<Vec<_>>(),
            "feature names at rank {}",
            rank
        );
        for (name, value) in &named {
            prop_assert_eq!(
                value.to_bits(),
                want.features[name].to_bits(),
                "feature {} at rank {}",
                name,
                rank
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The interned pipeline ranks exactly like the string-keyed reference
    /// on random tables and questions, under both the prior model and an
    /// arbitrary dense weight assignment.
    #[test]
    fn interned_parse_matches_string_keyed_reference(seed in 0u64..1_000_000) {
        let (table, questions) = environment(seed, 6);
        let parser = SemanticParser::with_prior();
        let reference = ReferenceModel::from_model(&parser.model);
        for question in &questions {
            assert_parse_matches(&parser, &reference, question, &table)?;
        }
    }

    /// Perturbed (post-training-like) weights — including negative, zero and
    /// fractional values on arbitrary features — preserve the equivalence.
    #[test]
    fn interned_parse_matches_reference_under_perturbed_weights(
        seed in 0u64..1_000_000,
        perturbations in proptest::collection::vec((0usize..92, -2.0f64..2.0), 0..12),
    ) {
        let (table, questions) = environment(seed, 4);
        let mut parser = SemanticParser::with_prior();
        let names: Vec<String> = ReferenceModel::from_model(&LogLinearModel::with_prior())
            .weights
            .keys()
            .cloned()
            .collect();
        for (slot, weight) in perturbations {
            let name = &names[slot % names.len()];
            parser.model.set_weight(name, weight);
        }
        let reference = ReferenceModel::from_model(&parser.model);
        for question in &questions {
            assert_parse_matches(&parser, &reference, question, &table)?;
        }
    }

    /// The top-k serving path returns the same prefix as the reference
    /// ranking — the list shown to users is unchanged by interning.
    #[test]
    fn top_k_prefix_matches_reference(seed in 0u64..1_000_000) {
        let (table, questions) = environment(seed, 3);
        let parser = SemanticParser::with_prior();
        let reference = ReferenceModel::from_model(&parser.model);
        for question in &questions {
            let evaluator = Evaluator::new(&table);
            let top = parser.parse_top_k(question, &table, 7);
            let expected =
                parse_in_session_reference(&reference, &parser.config, question, &evaluator);
            prop_assert_eq!(top.len(), expected.len().min(7));
            for (got, want) in top.iter().zip(&expected) {
                prop_assert_eq!(&got.formula, &want.formula);
                prop_assert_eq!(got.score.to_bits(), want.score.to_bits());
            }
        }
    }

    /// AdaGrad training over random examples (weak supervision plus a slice
    /// of annotated examples, Eq. 8) produces weights byte-identical to the
    /// string-keyed trainer, and the trained interned model serializes to
    /// exactly the reference weight map.
    #[test]
    fn trained_weights_are_byte_identical_to_reference(seed in 0u64..100_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let domains = all_domains();
        let mut catalog = Catalog::new();
        let mut examples: Vec<TrainExample> = Vec::new();
        for t in 0..2usize {
            let domain = &domains[(seed as usize + t) % domains.len()];
            let table = generate_table(domain, t, &mut rng);
            let name = table.name().to_string();
            for (i, q) in generate_questions(&table, 4, &mut rng).into_iter().enumerate() {
                let example = TrainExample::weak(q.question, name.clone(), q.answer);
                // Every third example carries its gold annotation (Eq. 7).
                examples.push(if i % 3 == 0 {
                    example.with_annotations(vec![q.formula])
                } else {
                    example
                });
            }
            catalog.insert(table);
        }
        let config = TrainConfig {
            epochs: 2,
            seed: seed ^ 0x9e37,
            workers: 2,
            ..TrainConfig::default()
        };

        let mut parser = SemanticParser::with_prior();
        Trainer::new(config.clone()).train(&mut parser, &examples, &catalog);

        let mut reference = ReferenceModel::from_model(&LogLinearModel::with_prior());
        ReferenceTrainer::new(config).train(
            &mut reference,
            &parser.config,
            &examples,
            &catalog,
        );

        let trained = parser.model.sorted_weights();
        prop_assert_eq!(
            trained.keys().collect::<Vec<_>>(),
            reference.weights.keys().collect::<Vec<_>>(),
            "weight names"
        );
        for (name, weight) in &trained {
            prop_assert_eq!(
                weight.to_bits(),
                reference.weights[name].to_bits(),
                "weight {} ({} vs {})",
                name,
                weight,
                reference.weights[name]
            );
        }
        // The serialized model is the reference weight map byte for byte.
        let model_json = serde_json::to_string(&parser.model).expect("model serialize");
        let reference_json = format!(
            "{{\"weights\":{}}}",
            serde_json::to_string(&reference.weights).expect("map serialize")
        );
        prop_assert_eq!(model_json, reference_json);
    }
}
