//! The feature symbol table: interned [`FeatureId`]s for every feature name.
//!
//! Feature extraction used to key everything by freshly-allocated `String`s
//! and pay a B-tree string comparison per feature per candidate. This module
//! replaces the names with dense integer ids:
//!
//! * a **static segment** holding every structured feature the extractor can
//!   emit — scalar features, `family:*` / `op:*` per formula root, and the
//!   `trig+op:*` / `trig-op:*` / `op-trig:*` trigger-agreement features —
//!   built once per process, and
//! * a **dynamic segment** for names first seen at runtime (weights loaded
//!   from a serialized model, hand-set test weights), registered lazily
//!   behind an `RwLock`.
//!
//! **Ordering invariant**: static ids are assigned in *lexicographic name
//! order*. A feature vector sorted by id is therefore iterated in exactly
//! the order the old `BTreeMap<String, f64>` iterated its keys, so dot
//! products sum their terms in the same sequence and scores stay
//! bit-identical to the string-keyed reference implementation
//! ([`crate::reference`]). Extracted vectors only ever contain static ids;
//! dynamic ids exist solely so models can carry weights for names the
//! extractor never emits (where they are dead weight, exactly as before).

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

use wtq_dcs::{AggregateOp, Formula};

/// An interned feature name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FeatureId(u32);

impl FeatureId {
    /// The dense index of this feature (usable into weight vectors).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(index: usize) -> FeatureId {
        FeatureId(index as u32)
    }
}

/// Number of formula root labels (the `family:` / `op:` universe).
pub(crate) const NUM_ROOTS: usize = 16;

/// Root operator labels, indexed by [`root_index`].
pub(crate) const ROOT_LABELS: [&str; NUM_ROOTS] = [
    "const",
    "all_records",
    "join",
    "compare_join",
    "column_values",
    "prev",
    "next",
    "intersect",
    "union",
    "count",
    "aggregate",
    "superlative",
    "index_superlative",
    "most_common",
    "compare_values",
    "difference",
];

/// The label index of a formula's root operator (see [`ROOT_LABELS`]).
pub(crate) fn root_index(formula: &Formula) -> usize {
    match formula {
        Formula::Const(_) => 0,
        Formula::AllRecords => 1,
        Formula::Join { .. } => 2,
        Formula::CompareJoin { .. } => 3,
        Formula::ColumnValues { .. } => 4,
        Formula::Prev(_) => 5,
        Formula::Next(_) => 6,
        Formula::Intersect(_, _) => 7,
        Formula::Union(_, _) => 8,
        Formula::Aggregate {
            op: AggregateOp::Count,
            ..
        } => 9,
        Formula::Aggregate { .. } => 10,
        Formula::SuperlativeRecords { .. } => 11,
        Formula::RecordIndexSuperlative { .. } => 12,
        Formula::MostCommonValue { .. } => 13,
        Formula::CompareValues { .. } => 14,
        Formula::Sub(_, _) => 15,
    }
}

/// Number of trigger-phrase kinds.
pub(crate) const NUM_TRIGGERS: usize = 15;

/// Trigger kinds, in the order the extractor tests them.
pub(crate) const TRIGGER_KINDS: [&str; NUM_TRIGGERS] = [
    "count",
    "difference",
    "aggregate_max",
    "aggregate_min",
    "sum",
    "avg",
    "prev",
    "next",
    "last",
    "first",
    "compare",
    "most_common",
    "union",
    "intersect",
    "comparison",
];

/// Phrases that fire each trigger kind, parallel to [`TRIGGER_KINDS`].
pub(crate) const TRIGGER_PHRASES: [&[&str]; NUM_TRIGGERS] = [
    &["how many", "number of", "how often", "how many times"],
    &["difference", "how many more", "how much more", "more rows"],
    &["highest", "most", "largest", "greatest", "maximum", "top"],
    &["lowest", "least", "smallest", "fewest", "minimum", "bottom"],
    &["total", "sum", "in total", "altogether", "combined"],
    &["average", "mean"],
    &["before", "above", "previous", "prior"],
    &["after", "below", "next", "following"],
    &["last", "latest", "final", "most recent"],
    &["first", "earliest"],
    &[
        "higher", "lower", "older", "younger", "bigger", "smaller", "longer", "shorter",
    ],
    &[
        "most common",
        "appears the most",
        "most frequent",
        "most often",
    ],
    &[" or "],
    &[" and also ", " both "],
    &[
        "more than",
        "less than",
        "at least",
        "at most",
        "over",
        "under",
    ],
];

/// Phrases whose presence makes the question expect a numeric answer.
pub(crate) const WANTS_NUMBER_PHRASES: [&str; 4] =
    ["how many", "how much", "number of", "difference"];

/// The three trigger/operator agreement slots.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TrigSlot {
    /// `trig+op:` — phrase present and operator used.
    Agree = 0,
    /// `trig-op:` — phrase present but operator unused.
    TriggeredUnused = 1,
    /// `op-trig:` — operator used without its phrase.
    UsedUntriggered = 2,
}

/// Scalar (non-templated) features, indexed into [`Statics::scalar`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum Scalar {
    Size = 0,
    ConstNotInQuestion,
    ConstCoverage,
    UnusedLinks,
    ColNotInQuestion,
    ColCoverage,
    AnswerNumber,
    AnswerValues,
    AnswerSize,
    AnswerSingleton,
    AnswerNumericValues,
    AnswerRecords,
    WhNumberMatch,
    WhNumberMismatch,
    WhUnexpectedNumber,
}

const NUM_SCALARS: usize = 15;

const SCALAR_NAMES: [&str; NUM_SCALARS] = [
    "size",
    "const_not_in_question",
    "const_coverage",
    "unused_links",
    "col_not_in_question",
    "col_coverage",
    "answer:number",
    "answer:values",
    "answer_size",
    "answer:singleton",
    "answer:numeric_values",
    "answer:records",
    "wh:number_match",
    "wh:number_mismatch",
    "wh:unexpected_number",
];

/// The static segment: every extractor-emitted name, id-ordered
/// lexicographically (see the module docs for why that order is load-bearing).
struct Statics {
    /// Sorted feature names; `names[id]` is the name of static id `id`.
    names: Vec<String>,
    scalar: [u32; NUM_SCALARS],
    family: [u32; NUM_ROOTS],
    op: [u32; NUM_ROOTS],
    trig: [[u32; NUM_TRIGGERS]; 3],
}

fn statics() -> &'static Statics {
    static STATICS: OnceLock<Statics> = OnceLock::new();
    STATICS.get_or_init(|| {
        let mut names: Vec<String> = SCALAR_NAMES.iter().map(|s| s.to_string()).collect();
        for label in ROOT_LABELS {
            names.push(format!("family:{label}"));
            names.push(format!("op:{label}"));
        }
        for kind in TRIGGER_KINDS {
            names.push(format!("trig+op:{kind}"));
            names.push(format!("trig-op:{kind}"));
            names.push(format!("op-trig:{kind}"));
        }
        names.sort();
        debug_assert!(names.windows(2).all(|w| w[0] != w[1]));
        let find = |name: &str| {
            names
                .binary_search_by(|probe| probe.as_str().cmp(name))
                .expect("static feature name present") as u32
        };
        let mut scalar = [0u32; NUM_SCALARS];
        for (i, name) in SCALAR_NAMES.iter().enumerate() {
            scalar[i] = find(name);
        }
        let mut family = [0u32; NUM_ROOTS];
        let mut op = [0u32; NUM_ROOTS];
        for (i, label) in ROOT_LABELS.iter().enumerate() {
            family[i] = find(&format!("family:{label}"));
            op[i] = find(&format!("op:{label}"));
        }
        let mut trig = [[0u32; NUM_TRIGGERS]; 3];
        for (i, kind) in TRIGGER_KINDS.iter().enumerate() {
            trig[TrigSlot::Agree as usize][i] = find(&format!("trig+op:{kind}"));
            trig[TrigSlot::TriggeredUnused as usize][i] = find(&format!("trig-op:{kind}"));
            trig[TrigSlot::UsedUntriggered as usize][i] = find(&format!("op-trig:{kind}"));
        }
        Statics {
            names,
            scalar,
            family,
            op,
            trig,
        }
    })
}

/// Names interned after startup (deserialized models, test weights).
#[derive(Default)]
struct DynSegment {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

fn dynamic() -> &'static RwLock<DynSegment> {
    static DYNAMIC: OnceLock<RwLock<DynSegment>> = OnceLock::new();
    DYNAMIC.get_or_init(|| RwLock::new(DynSegment::default()))
}

/// Number of statically-registered features.
pub fn num_static_features() -> usize {
    statics().names.len()
}

/// Look a name up without interning it.
pub fn lookup(name: &str) -> Option<FeatureId> {
    let statics = statics();
    if let Ok(index) = statics
        .names
        .binary_search_by(|probe| probe.as_str().cmp(name))
    {
        return Some(FeatureId(index as u32));
    }
    let dynamic = dynamic().read().expect("symbol table poisoned");
    dynamic.by_name.get(name).copied().map(FeatureId)
}

/// Intern a name, registering it in the dynamic segment if it is not a
/// static feature.
pub fn intern(name: &str) -> FeatureId {
    if let Some(id) = lookup(name) {
        return id;
    }
    let base = num_static_features() as u32;
    let mut dynamic = dynamic().write().expect("symbol table poisoned");
    if let Some(&id) = dynamic.by_name.get(name) {
        return FeatureId(id);
    }
    let id = base + dynamic.names.len() as u32;
    dynamic.names.push(name.to_string());
    dynamic.by_name.insert(name.to_string(), id);
    FeatureId(id)
}

/// The name of an interned feature.
pub fn feature_name(id: FeatureId) -> String {
    let statics = statics();
    let index = id.index();
    if index < statics.names.len() {
        return statics.names[index].clone();
    }
    let dynamic = dynamic().read().expect("symbol table poisoned");
    dynamic
        .names
        .get(index - statics.names.len())
        .cloned()
        .unwrap_or_else(|| format!("<unknown feature {index}>"))
}

pub(crate) fn scalar_id(scalar: Scalar) -> FeatureId {
    FeatureId(statics().scalar[scalar as usize])
}

pub(crate) fn family_id(root: usize) -> FeatureId {
    FeatureId(statics().family[root])
}

pub(crate) fn op_id(root: usize) -> FeatureId {
    FeatureId(statics().op[root])
}

pub(crate) fn trig_id(slot: TrigSlot, kind: usize) -> FeatureId {
    FeatureId(statics().trig[slot as usize][kind])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_ids_follow_lexicographic_name_order() {
        let n = num_static_features();
        assert_eq!(n, NUM_SCALARS + 2 * NUM_ROOTS + 3 * NUM_TRIGGERS);
        let names: Vec<String> = (0..n)
            .map(|i| feature_name(FeatureId::from_index(i)))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "static ids must be name-ordered");
    }

    #[test]
    fn structured_accessors_agree_with_names() {
        assert_eq!(feature_name(scalar_id(Scalar::Size)), "size");
        assert_eq!(
            feature_name(scalar_id(Scalar::WhUnexpectedNumber)),
            "wh:unexpected_number"
        );
        for (i, label) in ROOT_LABELS.iter().enumerate() {
            assert_eq!(feature_name(family_id(i)), format!("family:{label}"));
            assert_eq!(feature_name(op_id(i)), format!("op:{label}"));
        }
        for (i, kind) in TRIGGER_KINDS.iter().enumerate() {
            assert_eq!(
                feature_name(trig_id(TrigSlot::Agree, i)),
                format!("trig+op:{kind}")
            );
            assert_eq!(
                feature_name(trig_id(TrigSlot::TriggeredUnused, i)),
                format!("trig-op:{kind}")
            );
            assert_eq!(
                feature_name(trig_id(TrigSlot::UsedUntriggered, i)),
                format!("op-trig:{kind}")
            );
        }
    }

    #[test]
    fn dynamic_interning_is_stable_and_lookup_does_not_register() {
        assert!(lookup("totally-novel-feature-name").is_none());
        let a = intern("totally-novel-feature-name");
        let b = intern("totally-novel-feature-name");
        assert_eq!(a, b);
        assert!(a.index() >= num_static_features());
        assert_eq!(feature_name(a), "totally-novel-feature-name");
        assert_eq!(lookup("totally-novel-feature-name"), Some(a));
        // Static names intern to their static ids.
        assert_eq!(intern("size"), scalar_id(Scalar::Size));
    }
}
