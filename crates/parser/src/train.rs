//! Training the semantic parser (§6.2, Eq. 5–8).
//!
//! The parser is trained from examples `{(x_i, T_i, y_i)}` by maximizing the
//! log-likelihood of producing the correct *answer* (weak supervision,
//! Eq. 6): the reward indicator `r(z | T, y)` is 1 for every candidate whose
//! execution matches the answer. When a subset of the examples additionally
//! carries question–query annotations procured through query explanations,
//! those examples switch to the indicator `r*(z | x, T)` of Eq. 7 — 1 only
//! for candidates equivalent to an annotated query — giving the combined
//! objective of Eq. 8. Optimization uses AdaGrad with L1 regularization,
//! following the paper (and [30]).

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wtq_dcs::{Answer, Formula};
use wtq_table::{Catalog, IndexCache};

use crate::model::{formulas_equivalent, softmax, Candidate, SemanticParser};

/// One training example: a question, its table, the gold answer, and (for
/// annotated examples) the set of user-validated correct queries `Q_x`.
#[derive(Debug, Clone)]
pub struct TrainExample {
    /// The natural-language question.
    pub question: String,
    /// Name of the table in the catalog.
    pub table: String,
    /// Gold answer `y` (always available — this is the weak supervision).
    pub answer: Answer,
    /// User-annotated correct queries `Q_x`, when feedback was collected.
    pub annotations: Vec<Formula>,
}

impl TrainExample {
    /// A weakly-supervised example (answer only).
    pub fn weak(question: impl Into<String>, table: impl Into<String>, answer: Answer) -> Self {
        TrainExample {
            question: question.into(),
            table: table.into(),
            answer,
            annotations: Vec::new(),
        }
    }

    /// Attach annotated queries (marking this example as a member of `A`).
    pub fn with_annotations(mut self, annotations: Vec<Formula>) -> Self {
        self.annotations = annotations;
        self
    }

    /// Whether the example carries annotations (`x ∈ A` in Eq. 8).
    pub fn is_annotated(&self) -> bool {
        !self.annotations.is_empty()
    }
}

/// Hyper-parameters of the AdaGrad trainer.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// AdaGrad base learning rate.
    pub learning_rate: f64,
    /// L1 regularization strength (the `λ‖θ‖₁` of Eq. 6).
    pub l1: f64,
    /// Shuffle seed (training is deterministic given the seed).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 3,
            learning_rate: 0.2,
            l1: 1e-4,
            seed: 13,
        }
    }
}

/// Evaluation metrics over a set of examples (the paper's correctness and
/// MRR, §7.1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ParserEvaluation {
    /// Number of examples evaluated.
    pub examples: usize,
    /// Fraction of examples whose top-ranked candidate is a correct
    /// translation of the question.
    pub correctness: f64,
    /// Mean reciprocal rank of the first correct candidate.
    pub mrr: f64,
    /// Fraction of examples with a correct candidate anywhere in the top-k
    /// (the correctness bound of §7.2).
    pub bound_at_k: f64,
    /// Fraction of examples whose top-ranked candidate merely returns the
    /// gold answer (answer accuracy — the weaker metric the paper contrasts
    /// correctness with in Figure 8).
    pub answer_accuracy: f64,
}

/// AdaGrad trainer for the log-linear parser.
pub struct Trainer {
    /// Accumulated squared gradients per feature.
    adagrad: BTreeMap<String, f64>,
    /// Shared table indexes, built once per table across epochs.
    indexes: IndexCache,
    config: TrainConfig,
}

impl Trainer {
    /// Create a trainer with the given hyper-parameters.
    pub fn new(config: TrainConfig) -> Self {
        Trainer {
            adagrad: BTreeMap::new(),
            indexes: IndexCache::new(),
            config,
        }
    }

    /// Train `parser` in place on `examples` over tables from `catalog`.
    ///
    /// Annotated examples use the Eq. 7 indicator, all others the Eq. 5
    /// answer indicator; this is exactly the split objective of Eq. 8.
    pub fn train(
        &mut self,
        parser: &mut SemanticParser,
        examples: &[TrainExample],
        catalog: &Catalog,
    ) {
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        for _epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for &index in &order {
                self.train_on_example(parser, &examples[index], catalog);
            }
        }
    }

    /// One stochastic gradient step on a single example. Returns `true` when
    /// the example produced a usable gradient (at least one rewarded
    /// candidate).
    pub fn train_on_example(
        &mut self,
        parser: &mut SemanticParser,
        example: &TrainExample,
        catalog: &Catalog,
    ) -> bool {
        let Some(table) = catalog.get(&example.table) else {
            return false;
        };
        let index = self.indexes.get_or_build(table);
        let candidates = parser.parse_with_index(&example.question, table, index);
        if candidates.is_empty() {
            return false;
        }
        let scores: Vec<f64> = candidates.iter().map(|c| c.score).collect();
        let probabilities = softmax(&scores);
        let rewards: Vec<f64> = candidates
            .iter()
            .map(|candidate| reward(candidate, example))
            .collect();
        let reward_mass: f64 = probabilities.iter().zip(&rewards).map(|(p, r)| p * r).sum();
        if reward_mass <= 0.0 {
            return false;
        }
        // q(z) ∝ r(z) p(z): the posterior over correct derivations.
        let posterior: Vec<f64> = probabilities
            .iter()
            .zip(&rewards)
            .map(|(p, r)| p * r / reward_mass)
            .collect();
        // Gradient of the log-likelihood: Σ_z (q(z) - p(z)) φ(z).
        let mut gradient: BTreeMap<String, f64> = BTreeMap::new();
        for ((candidate, q), p) in candidates.iter().zip(&posterior).zip(&probabilities) {
            let delta = q - p;
            if delta == 0.0 {
                continue;
            }
            for (name, value) in &candidate.features {
                *gradient.entry(name.clone()).or_insert(0.0) += delta * value;
            }
        }
        // AdaGrad update with L1 shrinkage.
        let weights = parser.model.weights_mut();
        for (name, g) in gradient {
            let accumulated = self.adagrad.entry(name.clone()).or_insert(0.0);
            *accumulated += g * g;
            let step = self.config.learning_rate / (accumulated.sqrt() + 1e-8);
            let entry = weights.entry(name).or_insert(0.0);
            *entry += step * g;
            // Soft-threshold toward zero (L1).
            let shrink = self.config.l1 * step;
            if *entry > shrink {
                *entry -= shrink;
            } else if *entry < -shrink {
                *entry += shrink;
            } else {
                *entry = 0.0;
            }
        }
        true
    }
}

/// The reward indicator: `r*` (Eq. 7) for annotated examples, `r` (Eq. 5)
/// otherwise.
fn reward(candidate: &Candidate, example: &TrainExample) -> f64 {
    if example.is_annotated() {
        if example
            .annotations
            .iter()
            .any(|gold| formulas_equivalent(gold, &candidate.formula))
        {
            1.0
        } else {
            0.0
        }
    } else if candidate.answer == example.answer {
        1.0
    } else {
        0.0
    }
}

/// Evaluate a parser: correctness, MRR, bound@k and answer accuracy.
///
/// A candidate counts as a *correct translation* when it is structurally
/// equivalent to the example's gold query; `gold_of` supplies that query
/// (for the synthetic dataset it is stored with each example).
pub fn evaluate<'a>(
    parser: &SemanticParser,
    examples: impl IntoIterator<Item = (&'a TrainExample, Formula)>,
    catalog: &Catalog,
    k: usize,
) -> ParserEvaluation {
    let mut evaluation = ParserEvaluation::default();
    let mut reciprocal_ranks = 0.0;
    let mut indexes = IndexCache::new();
    for (example, gold) in examples {
        let Some(table) = catalog.get(&example.table) else {
            continue;
        };
        evaluation.examples += 1;
        let index = indexes.get_or_build(table);
        let candidates = parser.parse_with_index(&example.question, table, index);
        let correct_rank = candidates
            .iter()
            .position(|candidate| formulas_equivalent(&candidate.formula, &gold));
        if correct_rank == Some(0) {
            evaluation.correctness += 1.0;
        }
        if let Some(rank) = correct_rank {
            reciprocal_ranks += 1.0 / (rank as f64 + 1.0);
            if rank < k {
                evaluation.bound_at_k += 1.0;
            }
        }
        if let Some(top) = candidates.first() {
            if top.answer == example.answer {
                evaluation.answer_accuracy += 1.0;
            }
        }
    }
    if evaluation.examples > 0 {
        let n = evaluation.examples as f64;
        evaluation.correctness /= n;
        evaluation.mrr = reciprocal_ranks / n;
        evaluation.bound_at_k /= n;
        evaluation.answer_accuracy /= n;
    }
    evaluation
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::ChaCha8Rng;
    use wtq_dataset::dataset::{Dataset, DatasetConfig};

    fn build_dataset(seed: u64) -> Dataset {
        let config = DatasetConfig {
            num_tables: 10,
            questions_per_table: 8,
            test_fraction: 0.3,
        };
        Dataset::generate(&config, &mut ChaCha8Rng::seed_from_u64(seed))
    }

    fn to_examples(dataset: &Dataset, split: wtq_dataset::Split) -> Vec<(TrainExample, Formula)> {
        dataset
            .examples_of(split)
            .into_iter()
            .map(|e| {
                (
                    TrainExample::weak(e.question.clone(), e.table.clone(), e.answer.clone()),
                    e.formula(),
                )
            })
            .collect()
    }

    #[test]
    fn training_improves_correctness_over_the_untrained_parser() {
        let dataset = build_dataset(31);
        let catalog = dataset.catalog();
        let train: Vec<(TrainExample, Formula)> = to_examples(&dataset, wtq_dataset::Split::Train);
        let test: Vec<(TrainExample, Formula)> = to_examples(&dataset, wtq_dataset::Split::Test);
        assert!(train.len() >= 30);
        assert!(test.len() >= 10);

        let mut parser = SemanticParser::untrained();
        let before = evaluate(
            &parser,
            test.iter().map(|(e, g)| (e, g.clone())),
            &catalog,
            7,
        );

        let mut trainer = Trainer::new(TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        });
        let train_examples: Vec<TrainExample> = train.iter().map(|(e, _)| e.clone()).collect();
        trainer.train(&mut parser, &train_examples, &catalog);

        let after = evaluate(
            &parser,
            test.iter().map(|(e, g)| (e, g.clone())),
            &catalog,
            7,
        );
        assert!(
            after.correctness > before.correctness,
            "training did not improve correctness ({} -> {})",
            before.correctness,
            after.correctness
        );
        assert!(after.mrr >= before.mrr);
        assert!(after.bound_at_k >= after.correctness);
        assert!(parser.model.num_parameters() > 0);
    }

    #[test]
    fn annotated_reward_only_accepts_annotated_queries() {
        let dataset = build_dataset(5);
        let catalog = dataset.catalog();
        let example = &dataset.examples[0];
        let gold = example.formula();
        let parser = SemanticParser::with_prior();
        let table = catalog.get(&example.table).unwrap();
        let candidates = parser.parse(&example.question, table);
        let annotated = TrainExample::weak(
            example.question.clone(),
            example.table.clone(),
            example.answer.clone(),
        )
        .with_annotations(vec![gold.clone()]);
        let weak = TrainExample::weak(
            example.question.clone(),
            example.table.clone(),
            example.answer.clone(),
        );
        let mut annotated_rewards = 0usize;
        let mut weak_rewards = 0usize;
        for candidate in &candidates {
            if reward(candidate, &annotated) > 0.0 {
                annotated_rewards += 1;
                assert!(formulas_equivalent(&candidate.formula, &gold));
            }
            if reward(candidate, &weak) > 0.0 {
                weak_rewards += 1;
            }
        }
        // Weak supervision rewards at least as many candidates as annotation
        // (spurious candidates returning the right answer).
        assert!(weak_rewards >= annotated_rewards);
    }

    #[test]
    fn training_on_annotations_is_at_least_as_good_as_weak_supervision() {
        // A larger test split than the other training tests: this one compares
        // two statistically close training objectives, so it needs more than a
        // handful of held-out questions for the tolerance below to be
        // meaningful.
        let config = DatasetConfig {
            num_tables: 16,
            questions_per_table: 8,
            test_fraction: 0.3,
        };
        let dataset = Dataset::generate(&config, &mut ChaCha8Rng::seed_from_u64(11));
        let catalog = dataset.catalog();
        let train = to_examples(&dataset, wtq_dataset::Split::Train);
        let test = to_examples(&dataset, wtq_dataset::Split::Test);
        let config = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };

        // Weak supervision.
        let mut weak_parser = SemanticParser::untrained();
        let weak_examples: Vec<TrainExample> = train.iter().map(|(e, _)| e.clone()).collect();
        Trainer::new(config.clone()).train(&mut weak_parser, &weak_examples, &catalog);
        let weak_eval = evaluate(
            &weak_parser,
            test.iter().map(|(e, g)| (e, g.clone())),
            &catalog,
            7,
        );

        // Annotated supervision: every training example annotated with its
        // gold query (the idealized upper bound of the §7.3 experiment).
        let mut annotated_parser = SemanticParser::untrained();
        let annotated_examples: Vec<TrainExample> = train
            .iter()
            .map(|(e, gold)| e.clone().with_annotations(vec![gold.clone()]))
            .collect();
        Trainer::new(config).train(&mut annotated_parser, &annotated_examples, &catalog);
        let annotated_eval = evaluate(
            &annotated_parser,
            test.iter().map(|(e, g)| (e, g.clone())),
            &catalog,
            7,
        );

        // On a single small split the two objectives can land within noise of
        // each other; what must never happen is annotations degrading the
        // parser substantially (the paper finds they help).
        assert!(
            annotated_eval.correctness + 0.08 >= weak_eval.correctness,
            "annotations hurt correctness ({} vs {})",
            annotated_eval.correctness,
            weak_eval.correctness
        );
        assert!(annotated_eval.bound_at_k >= annotated_eval.correctness);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let dataset = build_dataset(3);
        let catalog = dataset.catalog();
        let train = to_examples(&dataset, wtq_dataset::Split::Train);
        let examples: Vec<TrainExample> = train.iter().map(|(e, _)| e.clone()).collect();
        let run = || {
            let mut parser = SemanticParser::untrained();
            Trainer::new(TrainConfig {
                epochs: 1,
                ..TrainConfig::default()
            })
            .train(&mut parser, &examples, &catalog);
            let mut weights: Vec<(String, i64)> = parser
                .model
                .weights()
                .iter()
                .map(|(k, v)| (k.clone(), (v * 1e9) as i64))
                .collect();
            weights.sort();
            weights
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn evaluation_on_empty_input_is_zeroed() {
        let parser = SemanticParser::with_prior();
        let catalog = Catalog::new();
        let evaluation = evaluate(&parser, std::iter::empty(), &catalog, 7);
        assert_eq!(evaluation.examples, 0);
        assert_eq!(evaluation.correctness, 0.0);
    }
}
