//! Training the semantic parser (§6.2, Eq. 5–8).
//!
//! The parser is trained from examples `{(x_i, T_i, y_i)}` by maximizing the
//! log-likelihood of producing the correct *answer* (weak supervision,
//! Eq. 6): the reward indicator `r(z | T, y)` is 1 for every candidate whose
//! execution matches the answer. When a subset of the examples additionally
//! carries question–query annotations procured through query explanations,
//! those examples switch to the indicator `r*(z | x, T)` of Eq. 7 — 1 only
//! for candidates equivalent to an annotated query — giving the combined
//! objective of Eq. 8. Optimization uses AdaGrad with L1 regularization,
//! following the paper (and [30]).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wtq_dcs::{Answer, Evaluator, Formula};
use wtq_table::{Catalog, IndexCache};

use crate::candidates::generate_candidates_with;
use crate::features::{extract_features, FeatureVec};
use crate::lexicon::analyze_question_with;
use crate::model::{formulas_equivalent, softmax, SemanticParser};
use crate::symbols::FeatureId;

/// One training example: a question, its table, the gold answer, and (for
/// annotated examples) the set of user-validated correct queries `Q_x`.
#[derive(Debug, Clone)]
pub struct TrainExample {
    /// The natural-language question.
    pub question: String,
    /// Name of the table in the catalog.
    pub table: String,
    /// Gold answer `y` (always available — this is the weak supervision).
    pub answer: Answer,
    /// User-annotated correct queries `Q_x`, when feedback was collected.
    pub annotations: Vec<Formula>,
}

impl TrainExample {
    /// A weakly-supervised example (answer only).
    pub fn weak(question: impl Into<String>, table: impl Into<String>, answer: Answer) -> Self {
        TrainExample {
            question: question.into(),
            table: table.into(),
            answer,
            annotations: Vec::new(),
        }
    }

    /// Attach annotated queries (marking this example as a member of `A`).
    pub fn with_annotations(mut self, annotations: Vec<Formula>) -> Self {
        self.annotations = annotations;
        self
    }

    /// Whether the example carries annotations (`x ∈ A` in Eq. 8).
    pub fn is_annotated(&self) -> bool {
        !self.annotations.is_empty()
    }
}

/// Hyper-parameters of the AdaGrad trainer.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// AdaGrad base learning rate.
    pub learning_rate: f64,
    /// L1 regularization strength (the `λ‖θ‖₁` of Eq. 6).
    pub l1: f64,
    /// Shuffle seed (training is deterministic given the seed).
    pub seed: u64,
    /// Worker threads for the candidate-generation phase. Candidate pools
    /// and feature vectors are weight-independent, so they are generated in
    /// parallel up front; the AdaGrad updates themselves stay sequential, so
    /// the trained weights are identical for every worker count.
    pub workers: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 3,
            learning_rate: 0.2,
            l1: 1e-4,
            seed: 13,
            workers: wtq_runtime::default_workers(),
        }
    }
}

/// Evaluation metrics over a set of examples (the paper's correctness and
/// MRR, §7.1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ParserEvaluation {
    /// Number of examples evaluated.
    pub examples: usize,
    /// Fraction of examples whose top-ranked candidate is a correct
    /// translation of the question.
    pub correctness: f64,
    /// Mean reciprocal rank of the first correct candidate.
    pub mrr: f64,
    /// Fraction of examples with a correct candidate anywhere in the top-k
    /// (the correctness bound of §7.2).
    pub bound_at_k: f64,
    /// Fraction of examples whose top-ranked candidate merely returns the
    /// gold answer (answer accuracy — the weaker metric the paper contrasts
    /// correctness with in Figure 8).
    pub answer_accuracy: f64,
}

/// One generated candidate of a training example, with everything the
/// gradient step needs precomputed: candidate generation and feature
/// extraction depend only on the question and the table — never on the
/// model weights — so they are computed once (in parallel across examples)
/// and reused by every epoch's scoring pass.
#[derive(Debug, Clone)]
struct PreparedCandidate {
    formula: Formula,
    answer: Answer,
    features: FeatureVec,
    /// Cached `formula.size()` — second-level ranking tie-break.
    size: usize,
    /// Cached `formula.to_string()` — final ranking tie-break.
    key: String,
}

/// A training example's precomputed candidate pool (generation order).
#[derive(Debug, Clone)]
struct PreparedExample {
    candidates: Vec<PreparedCandidate>,
}

/// Generate the weight-independent part of one SGD step: the candidate pool
/// and feature vectors for `example`. Thread-safe (`&IndexCache` is shared),
/// so the trainer fans this out over a worker pool.
fn prepare_example(
    parser: &SemanticParser,
    indexes: &IndexCache,
    example: &TrainExample,
    catalog: &Catalog,
) -> Option<PreparedExample> {
    let table = catalog.get(&example.table)?;
    let index = indexes.get_or_build(table);
    let evaluator = Evaluator::with_index(table, index);
    let analysis = analyze_question_with(&example.question, evaluator.kb());
    let raw = generate_candidates_with(&analysis, &evaluator, &parser.config);
    let candidates = raw
        .into_iter()
        .map(|raw_candidate| {
            let features = extract_features(&analysis, table, &raw_candidate);
            PreparedCandidate {
                size: raw_candidate.formula.size(),
                key: raw_candidate.formula.to_string(),
                formula: raw_candidate.formula,
                answer: raw_candidate.answer,
                features,
            }
        })
        .collect();
    Some(PreparedExample { candidates })
}

/// AdaGrad trainer for the log-linear parser. Per-feature state is dense,
/// indexed by [`FeatureId`] — the gradient step walks the touched ids with
/// direct slot loads instead of B-tree string lookups.
pub struct Trainer {
    /// Accumulated squared gradients per feature (dense, by feature id).
    adagrad: Vec<f64>,
    /// Gradient accumulator reused across steps (dense, by feature id).
    gradient: Vec<f64>,
    /// Which `gradient` slots hold live values for the current step.
    in_gradient: Vec<bool>,
    /// The ids with live gradient slots, in first-touched order; sorted
    /// before applying updates so the L1 shrinkage visits features in the
    /// same (name) order the historical map-keyed loop did.
    touched: Vec<u32>,
    /// Shared table indexes, built once per table across epochs (and shared
    /// across the candidate-generation workers).
    indexes: IndexCache,
    config: TrainConfig,
}

impl Trainer {
    /// Create a trainer with the given hyper-parameters.
    pub fn new(config: TrainConfig) -> Self {
        Trainer {
            adagrad: Vec::new(),
            gradient: Vec::new(),
            in_gradient: Vec::new(),
            touched: Vec::new(),
            indexes: IndexCache::new(),
            config,
        }
    }

    /// Train `parser` in place on `examples` over tables from `catalog`.
    ///
    /// Annotated examples use the Eq. 7 indicator, all others the Eq. 5
    /// answer indicator; this is exactly the split objective of Eq. 8.
    ///
    /// Candidate generation (the expensive, weight-independent part of each
    /// step) runs once up front on a worker pool; the sequential epochs then
    /// only re-score the prepared pools with the current weights, so the
    /// resulting parser is byte-identical to fully sequential training.
    pub fn train(
        &mut self,
        parser: &mut SemanticParser,
        examples: &[TrainExample],
        catalog: &Catalog,
    ) {
        let prepared: Vec<Option<PreparedExample>> = {
            let parser: &SemanticParser = parser;
            let indexes = &self.indexes;
            wtq_runtime::run_batch(
                self.config.workers,
                examples.iter().collect(),
                |_, example| prepare_example(parser, indexes, example, catalog),
            )
        };
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        for _epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for &index in &order {
                if let Some(prepared) = &prepared[index] {
                    self.step(parser, prepared, &examples[index]);
                }
            }
        }
    }

    /// One stochastic gradient step on a single example. Returns `true` when
    /// the example produced a usable gradient (at least one rewarded
    /// candidate).
    pub fn train_on_example(
        &mut self,
        parser: &mut SemanticParser,
        example: &TrainExample,
        catalog: &Catalog,
    ) -> bool {
        let Some(prepared) = prepare_example(parser, &self.indexes, example, catalog) else {
            return false;
        };
        self.step(parser, &prepared, example)
    }

    /// The weight-dependent half of a step: score the prepared pool with the
    /// current weights, rank it exactly like `SemanticParser::parse` would,
    /// and apply the AdaGrad update.
    fn step(
        &mut self,
        parser: &mut SemanticParser,
        prepared: &PreparedExample,
        example: &TrainExample,
    ) -> bool {
        if prepared.candidates.is_empty() {
            return false;
        }
        // Rank candidates under the current model — the same ordering
        // `SemanticParser::rank` produces — so each epoch sees the pool in
        // the order a fresh parse would have returned it.
        let mut ranked: Vec<(&PreparedCandidate, f64)> = prepared
            .candidates
            .iter()
            .map(|candidate| (candidate, parser.model.score(&candidate.features)))
            .collect();
        ranked.sort_by(|(a, a_score), (b, b_score)| {
            crate::model::ranking_order((*a_score, a.size, &a.key), (*b_score, b.size, &b.key))
        });
        let scores: Vec<f64> = ranked.iter().map(|(_, score)| *score).collect();
        let probabilities = softmax(&scores);
        let rewards: Vec<f64> = ranked
            .iter()
            .map(|(candidate, _)| reward(&candidate.formula, &candidate.answer, example))
            .collect();
        let reward_mass: f64 = probabilities.iter().zip(&rewards).map(|(p, r)| p * r).sum();
        if reward_mass <= 0.0 {
            return false;
        }
        // q(z) ∝ r(z) p(z): the posterior over correct derivations.
        let posterior: Vec<f64> = probabilities
            .iter()
            .zip(&rewards)
            .map(|(p, r)| p * r / reward_mass)
            .collect();
        // Gradient of the log-likelihood: Σ_z (q(z) - p(z)) φ(z), accumulated
        // into the dense reusable buffer. A feature is "touched" (and gets an
        // L1 shrinkage pass) as soon as it appears in any candidate with a
        // non-zero delta — even when its summed gradient cancels to exactly
        // zero — matching the historical map-entry semantics.
        for (((candidate, _), q), p) in ranked.iter().zip(&posterior).zip(&probabilities) {
            let delta = q - p;
            if delta == 0.0 {
                continue;
            }
            for (id, value) in candidate.features.iter() {
                let index = id.index();
                if index >= self.gradient.len() {
                    self.gradient.resize(index + 1, 0.0);
                    self.in_gradient.resize(index + 1, false);
                }
                if !self.in_gradient[index] {
                    self.in_gradient[index] = true;
                    self.touched.push(index as u32);
                }
                self.gradient[index] += delta * value;
            }
        }
        // AdaGrad update with L1 shrinkage, visiting features in id order
        // (= name order, so the walk matches the old map iteration; the
        // per-feature updates are independent either way).
        self.touched.sort_unstable();
        for i in 0..self.touched.len() {
            let index = self.touched[i] as usize;
            let g = self.gradient[index];
            self.gradient[index] = 0.0;
            self.in_gradient[index] = false;
            if index >= self.adagrad.len() {
                self.adagrad.resize(index + 1, 0.0);
            }
            self.adagrad[index] += g * g;
            let step = self.config.learning_rate / (self.adagrad[index].sqrt() + 1e-8);
            let id = FeatureId::from_index(index);
            let mut weight = parser.model.weight_by_id(id) + step * g;
            // Soft-threshold toward zero (L1).
            let shrink = self.config.l1 * step;
            if weight > shrink {
                weight -= shrink;
            } else if weight < -shrink {
                weight += shrink;
            } else {
                weight = 0.0;
            }
            parser.model.set_weight_by_id(id, weight);
        }
        self.touched.clear();
        true
    }
}

/// The reward indicator: `r*` (Eq. 7) for annotated examples, `r` (Eq. 5)
/// otherwise.
pub(crate) fn reward(formula: &Formula, answer: &Answer, example: &TrainExample) -> f64 {
    if example.is_annotated() {
        if example
            .annotations
            .iter()
            .any(|gold| formulas_equivalent(gold, formula))
        {
            1.0
        } else {
            0.0
        }
    } else if answer == &example.answer {
        1.0
    } else {
        0.0
    }
}

/// Evaluate a parser: correctness, MRR, bound@k and answer accuracy.
///
/// A candidate counts as a *correct translation* when it is structurally
/// equivalent to the example's gold query; `gold_of` supplies that query
/// (for the synthetic dataset it is stored with each example).
pub fn evaluate<'a>(
    parser: &SemanticParser,
    examples: impl IntoIterator<Item = (&'a TrainExample, Formula)>,
    catalog: &Catalog,
    k: usize,
) -> ParserEvaluation {
    let items: Vec<(&TrainExample, Formula)> = examples.into_iter().collect();
    // Per-example parsing is independent and read-only; fan it out and fold
    // the per-example verdicts sequentially in input order, so the totals
    // are identical to a single-threaded pass.
    let indexes = IndexCache::new();
    let verdicts: Vec<Option<(Option<usize>, bool)>> = wtq_runtime::run_batch(
        wtq_runtime::default_workers(),
        items,
        |_, (example, gold)| {
            let table = catalog.get(&example.table)?;
            let index = indexes.get_or_build(table);
            let candidates = parser.parse_with_index(&example.question, table, index);
            let correct_rank = candidates
                .iter()
                .position(|candidate| formulas_equivalent(&candidate.formula, &gold));
            let answer_match = candidates
                .first()
                .map(|top| top.answer == example.answer)
                .unwrap_or(false);
            Some((correct_rank, answer_match))
        },
    );
    let mut evaluation = ParserEvaluation::default();
    let mut reciprocal_ranks = 0.0;
    for (correct_rank, answer_match) in verdicts.into_iter().flatten() {
        evaluation.examples += 1;
        if correct_rank == Some(0) {
            evaluation.correctness += 1.0;
        }
        if let Some(rank) = correct_rank {
            reciprocal_ranks += 1.0 / (rank as f64 + 1.0);
            if rank < k {
                evaluation.bound_at_k += 1.0;
            }
        }
        if answer_match {
            evaluation.answer_accuracy += 1.0;
        }
    }
    if evaluation.examples > 0 {
        let n = evaluation.examples as f64;
        evaluation.correctness /= n;
        evaluation.mrr = reciprocal_ranks / n;
        evaluation.bound_at_k /= n;
        evaluation.answer_accuracy /= n;
    }
    evaluation
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::ChaCha8Rng;
    use wtq_dataset::dataset::{Dataset, DatasetConfig};

    fn build_dataset(seed: u64) -> Dataset {
        let config = DatasetConfig {
            num_tables: 10,
            questions_per_table: 8,
            test_fraction: 0.3,
        };
        Dataset::generate(&config, &mut ChaCha8Rng::seed_from_u64(seed))
    }

    fn to_examples(dataset: &Dataset, split: wtq_dataset::Split) -> Vec<(TrainExample, Formula)> {
        dataset
            .examples_of(split)
            .into_iter()
            .map(|e| {
                (
                    TrainExample::weak(e.question.clone(), e.table.clone(), e.answer.clone()),
                    e.formula(),
                )
            })
            .collect()
    }

    #[test]
    fn training_improves_correctness_over_the_untrained_parser() {
        let dataset = build_dataset(31);
        let catalog = dataset.catalog();
        let train: Vec<(TrainExample, Formula)> = to_examples(&dataset, wtq_dataset::Split::Train);
        let test: Vec<(TrainExample, Formula)> = to_examples(&dataset, wtq_dataset::Split::Test);
        assert!(train.len() >= 30);
        assert!(test.len() >= 10);

        let mut parser = SemanticParser::untrained();
        let before = evaluate(
            &parser,
            test.iter().map(|(e, g)| (e, g.clone())),
            &catalog,
            7,
        );

        let mut trainer = Trainer::new(TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        });
        let train_examples: Vec<TrainExample> = train.iter().map(|(e, _)| e.clone()).collect();
        trainer.train(&mut parser, &train_examples, &catalog);

        let after = evaluate(
            &parser,
            test.iter().map(|(e, g)| (e, g.clone())),
            &catalog,
            7,
        );
        assert!(
            after.correctness > before.correctness,
            "training did not improve correctness ({} -> {})",
            before.correctness,
            after.correctness
        );
        assert!(after.mrr >= before.mrr);
        assert!(after.bound_at_k >= after.correctness);
        assert!(parser.model.num_parameters() > 0);
    }

    #[test]
    fn annotated_reward_only_accepts_annotated_queries() {
        let dataset = build_dataset(5);
        let catalog = dataset.catalog();
        let example = &dataset.examples[0];
        let gold = example.formula();
        let parser = SemanticParser::with_prior();
        let table = catalog.get(&example.table).unwrap();
        let candidates = parser.parse(&example.question, table);
        let annotated = TrainExample::weak(
            example.question.clone(),
            example.table.clone(),
            example.answer.clone(),
        )
        .with_annotations(vec![gold.clone()]);
        let weak = TrainExample::weak(
            example.question.clone(),
            example.table.clone(),
            example.answer.clone(),
        );
        let mut annotated_rewards = 0usize;
        let mut weak_rewards = 0usize;
        for candidate in &candidates {
            if reward(&candidate.formula, &candidate.answer, &annotated) > 0.0 {
                annotated_rewards += 1;
                assert!(formulas_equivalent(&candidate.formula, &gold));
            }
            if reward(&candidate.formula, &candidate.answer, &weak) > 0.0 {
                weak_rewards += 1;
            }
        }
        // Weak supervision rewards at least as many candidates as annotation
        // (spurious candidates returning the right answer).
        assert!(weak_rewards >= annotated_rewards);
    }

    #[test]
    fn training_on_annotations_is_at_least_as_good_as_weak_supervision() {
        // A larger test split than the other training tests: this one compares
        // two statistically close training objectives, so it needs more than a
        // handful of held-out questions for the tolerance below to be
        // meaningful.
        let config = DatasetConfig {
            num_tables: 16,
            questions_per_table: 8,
            test_fraction: 0.3,
        };
        let dataset = Dataset::generate(&config, &mut ChaCha8Rng::seed_from_u64(11));
        let catalog = dataset.catalog();
        let train = to_examples(&dataset, wtq_dataset::Split::Train);
        let test = to_examples(&dataset, wtq_dataset::Split::Test);
        let config = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };

        // Weak supervision.
        let mut weak_parser = SemanticParser::untrained();
        let weak_examples: Vec<TrainExample> = train.iter().map(|(e, _)| e.clone()).collect();
        Trainer::new(config.clone()).train(&mut weak_parser, &weak_examples, &catalog);
        let weak_eval = evaluate(
            &weak_parser,
            test.iter().map(|(e, g)| (e, g.clone())),
            &catalog,
            7,
        );

        // Annotated supervision: every training example annotated with its
        // gold query (the idealized upper bound of the §7.3 experiment).
        let mut annotated_parser = SemanticParser::untrained();
        let annotated_examples: Vec<TrainExample> = train
            .iter()
            .map(|(e, gold)| e.clone().with_annotations(vec![gold.clone()]))
            .collect();
        Trainer::new(config).train(&mut annotated_parser, &annotated_examples, &catalog);
        let annotated_eval = evaluate(
            &annotated_parser,
            test.iter().map(|(e, g)| (e, g.clone())),
            &catalog,
            7,
        );

        // On a single small split the two objectives can land within noise of
        // each other; what must never happen is annotations degrading the
        // parser substantially (the paper finds they help).
        assert!(
            annotated_eval.correctness + 0.08 >= weak_eval.correctness,
            "annotations hurt correctness ({} vs {})",
            annotated_eval.correctness,
            weak_eval.correctness
        );
        assert!(annotated_eval.bound_at_k >= annotated_eval.correctness);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let dataset = build_dataset(3);
        let catalog = dataset.catalog();
        let train = to_examples(&dataset, wtq_dataset::Split::Train);
        let examples: Vec<TrainExample> = train.iter().map(|(e, _)| e.clone()).collect();
        let run = || {
            let mut parser = SemanticParser::untrained();
            Trainer::new(TrainConfig {
                epochs: 1,
                ..TrainConfig::default()
            })
            .train(&mut parser, &examples, &catalog);
            let mut weights: Vec<(String, i64)> = parser
                .model
                .sorted_weights()
                .iter()
                .map(|(k, v)| (k.clone(), (v * 1e9) as i64))
                .collect();
            weights.sort();
            weights
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn evaluation_on_empty_input_is_zeroed() {
        let parser = SemanticParser::with_prior();
        let catalog = Catalog::new();
        let evaluation = evaluate(&parser, std::iter::empty(), &catalog, 7);
        assert_eq!(evaluation.examples, 0);
        assert_eq!(evaluation.correctness, 0.0);
    }
}
