//! Candidate formula generation.
//!
//! Starting from the question's links (values, columns, numbers), the
//! generator composes typed lambda DCS formulas bottom-up, in the spirit of
//! the floating parser used by the paper's baseline: record-denoting bases
//! first (joins, comparisons, intersections, unions, superlatives, row
//! shifts), then value projections, then aggregates and differences. Only
//! formulas that type-check, execute successfully and denote a non-empty
//! result are kept, and the candidate pool is capped so downstream scoring
//! stays fast.

use std::collections::HashSet;
use std::time::Instant;

use wtq_dcs::{typecheck, AggregateOp, Answer, CompareOp, Evaluator, Formula, SuperlativeOp};
use wtq_table::Table;

use crate::lexicon::QuestionAnalysis;

/// Limits applied during candidate generation.
#[derive(Debug, Clone)]
pub struct CandidateConfig {
    /// Maximum number of value links considered.
    pub max_value_links: usize,
    /// Maximum number of record-denoting base formulas kept.
    pub max_record_bases: usize,
    /// Maximum number of candidates returned.
    pub max_candidates: usize,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        CandidateConfig {
            max_value_links: 6,
            max_record_bases: 72,
            max_candidates: 320,
        }
    }
}

/// A generated candidate before scoring: the formula plus its execution
/// result.
#[derive(Debug, Clone)]
pub struct RawCandidate {
    /// The candidate lambda DCS formula.
    pub formula: Formula,
    /// Its canonical answer on the table.
    pub answer: Answer,
}

/// Generate candidate formulas for a question over a table. Builds a fresh
/// [`Evaluator`] session; callers running many questions (or holding a
/// shared table index) should use [`generate_candidates_with`].
pub fn generate_candidates(
    analysis: &QuestionAnalysis,
    table: &Table,
    config: &CandidateConfig,
) -> Vec<RawCandidate> {
    generate_candidates_with(analysis, &Evaluator::new(table), config)
}

/// Generate candidate formulas using an existing evaluator session. The
/// session's denotation cache persists across the pool, so record bases
/// shared by many candidates (joins, comparisons, superlatives) execute
/// once; column-type metadata comes from the session's [`wtq_table::TableIndex`]
/// instead of being recomputed per question.
pub fn generate_candidates_with(
    analysis: &QuestionAnalysis,
    evaluator: &Evaluator<'_>,
    config: &CandidateConfig,
) -> Vec<RawCandidate> {
    generate_candidates_timed(analysis, evaluator, config, &mut 0)
}

/// Like [`generate_candidates_with`], but accumulates the time spent inside
/// `evaluator.eval` calls into `eval_ns`, so the parse pipeline can report
/// formula execution separately from candidate composition.
pub(crate) fn generate_candidates_timed(
    analysis: &QuestionAnalysis,
    evaluator: &Evaluator<'_>,
    config: &CandidateConfig,
    eval_ns: &mut u64,
) -> Vec<RawCandidate> {
    let table = evaluator.table();
    let links = analysis.top_value_links(config.max_value_links);
    let numeric_columns = evaluator.index().numeric_columns();
    let text_columns = evaluator.index().text_columns();
    let column_name = |c: usize| table.column_name(c).to_string();

    // ----- Record-denoting bases -------------------------------------------------
    let mut record_bases: Vec<Formula> = Vec::new();
    record_bases.push(Formula::AllRecords);
    // Joins from value links.
    let joins: Vec<Formula> = links
        .iter()
        .map(|link| Formula::Join {
            column: column_name(link.column),
            values: Box::new(Formula::Const(link.value.clone())),
        })
        .collect();
    record_bases.extend(joins.clone());
    // Pairwise intersections (different columns) and unions (same column).
    for i in 0..links.len() {
        for j in (i + 1)..links.len() {
            let (a, b) = (&links[i], &links[j]);
            let pair = (joins[i].clone(), joins[j].clone());
            if a.column == b.column {
                record_bases.push(Formula::Union(Box::new(pair.0), Box::new(pair.1)));
            } else {
                record_bases.push(Formula::Intersect(Box::new(pair.0), Box::new(pair.1)));
            }
        }
    }
    // Row shifts and first/last over join bases (kept early so the base cap
    // never drops them: they anchor the adjacent-row and first/last-row
    // question families).
    for join in &joins {
        record_bases.push(Formula::Prev(Box::new(join.clone())));
        record_bases.push(Formula::Next(Box::new(join.clone())));
        for op in [SuperlativeOp::Argmax, SuperlativeOp::Argmin] {
            record_bases.push(Formula::RecordIndexSuperlative {
                op,
                records: Box::new(join.clone()),
            });
        }
    }
    // Comparison joins from literal numbers.
    for &number in analysis.numbers.iter().take(3) {
        for &column in numeric_columns {
            for op in [CompareOp::Gt, CompareOp::Lt, CompareOp::Geq, CompareOp::Leq] {
                record_bases.push(Formula::CompareJoin {
                    column: column_name(column),
                    op,
                    value: Box::new(Formula::Const(wtq_table::Value::Num(number))),
                });
            }
        }
    }
    // Superlatives keyed by numeric columns, over the highest-priority bases
    // (all records and the link-anchored joins / set combinations).
    let superlative_sources: Vec<Formula> = record_bases
        .iter()
        .filter(|base| {
            matches!(
                base,
                Formula::AllRecords
                    | Formula::Join { .. }
                    | Formula::Intersect(_, _)
                    | Formula::Union(_, _)
            )
        })
        .take(12)
        .cloned()
        .collect();
    for base in &superlative_sources {
        for &column in numeric_columns {
            for op in [SuperlativeOp::Argmax, SuperlativeOp::Argmin] {
                record_bases.push(Formula::SuperlativeRecords {
                    op,
                    records: Box::new(base.clone()),
                    column: column_name(column),
                });
            }
        }
    }

    // Keep only record bases that evaluate to a non-empty record set; cap.
    let mut live_bases: Vec<Formula> = Vec::new();
    for base in record_bases {
        if live_bases.len() >= config.max_record_bases {
            break;
        }
        let eval_start = Instant::now();
        let result = evaluator.eval(&base);
        *eval_ns += eval_start.elapsed().as_nanos() as u64;
        if let Ok(denotation) = result {
            if !denotation.is_empty() {
                live_bases.push(base);
            }
        }
    }

    // ----- Value- and number-denoting candidates ---------------------------------
    let mut seen: HashSet<Formula> = HashSet::new();
    let mut out: Vec<RawCandidate> = Vec::new();
    let push_eval_ns = std::cell::Cell::new(0u64);
    let push = |formula: Formula, out: &mut Vec<RawCandidate>, seen: &mut HashSet<Formula>| {
        if out.len() >= config.max_candidates || seen.contains(&formula) {
            return;
        }
        if typecheck(&formula).is_err() {
            return;
        }
        let eval_start = Instant::now();
        let result = evaluator.eval(&formula);
        push_eval_ns.set(push_eval_ns.get() + eval_start.elapsed().as_nanos() as u64);
        let Ok(denotation) = result else {
            return;
        };
        if denotation.is_empty() {
            return;
        }
        let answer = Answer::from_denotation(&denotation);
        if answer.is_empty() || answer.len() > 12 {
            return;
        }
        seen.insert(formula.clone());
        out.push(RawCandidate { formula, answer });
    };

    // Projections of every live base onto every column, plus aggregates of
    // numeric projections and counts of the base itself.
    for base in &live_bases {
        if !matches!(base, Formula::AllRecords) {
            push(
                Formula::aggregate(AggregateOp::Count, base.clone()),
                &mut out,
                &mut seen,
            );
        }
        for column in 0..table.num_columns() {
            let projection = Formula::ColumnValues {
                column: column_name(column),
                records: Box::new(base.clone()),
            };
            if !matches!(base, Formula::AllRecords) {
                push(projection.clone(), &mut out, &mut seen);
            }
            if numeric_columns.contains(&column) {
                for op in [
                    AggregateOp::Max,
                    AggregateOp::Min,
                    AggregateOp::Sum,
                    AggregateOp::Avg,
                ] {
                    push(
                        Formula::aggregate(op, projection.clone()),
                        &mut out,
                        &mut seen,
                    );
                }
            }
        }
    }

    // Most-common values per text column.
    for &column in text_columns {
        for op in [SuperlativeOp::Argmax, SuperlativeOp::Argmin] {
            push(
                Formula::MostCommonValue {
                    op,
                    values: Box::new(Formula::ColumnValues {
                        column: column_name(column),
                        records: Box::new(Formula::AllRecords),
                    }),
                    column: column_name(column),
                },
                &mut out,
                &mut seen,
            );
        }
    }

    // Same-column value pairs: differences, occurrence differences and
    // comparisons by a numeric key column.
    for i in 0..links.len() {
        for j in 0..links.len() {
            if i == j || links[i].column != links[j].column {
                continue;
            }
            let (a, b) = (&links[i], &links[j]);
            let sel = column_name(a.column);
            let join_a = Formula::Join {
                column: sel.clone(),
                values: Box::new(Formula::Const(a.value.clone())),
            };
            let join_b = Formula::Join {
                column: sel.clone(),
                values: Box::new(Formula::Const(b.value.clone())),
            };
            push(
                Formula::Sub(
                    Box::new(Formula::aggregate(AggregateOp::Count, join_a.clone())),
                    Box::new(Formula::aggregate(AggregateOp::Count, join_b.clone())),
                ),
                &mut out,
                &mut seen,
            );
            for &num in numeric_columns {
                let num_name = column_name(num);
                push(
                    Formula::Sub(
                        Box::new(Formula::ColumnValues {
                            column: num_name.clone(),
                            records: Box::new(join_a.clone()),
                        }),
                        Box::new(Formula::ColumnValues {
                            column: num_name.clone(),
                            records: Box::new(join_b.clone()),
                        }),
                    ),
                    &mut out,
                    &mut seen,
                );
                if i < j {
                    for op in [SuperlativeOp::Argmax, SuperlativeOp::Argmin] {
                        for (first, second) in [(a, b), (b, a)] {
                            push(
                                Formula::CompareValues {
                                    op,
                                    values: Box::new(Formula::Union(
                                        Box::new(Formula::Const(first.value.clone())),
                                        Box::new(Formula::Const(second.value.clone())),
                                    )),
                                    key_column: num_name.clone(),
                                    value_column: sel.clone(),
                                },
                                &mut out,
                                &mut seen,
                            );
                        }
                    }
                }
            }
        }
    }

    *eval_ns += push_eval_ns.get();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::analyze_question;
    use crate::model::formulas_equivalent;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wtq_dataset::{all_domains, generate_questions, generate_table};
    use wtq_table::samples;

    fn candidates_for(question: &str, table: &Table) -> Vec<RawCandidate> {
        let analysis = analyze_question(question, table);
        generate_candidates(&analysis, table, &CandidateConfig::default())
    }

    #[test]
    fn figure_one_gold_query_is_generated() {
        let table = samples::olympics();
        let candidates = candidates_for("Greece held its last Olympics in what year?", &table);
        assert!(!candidates.is_empty());
        let gold = wtq_dcs::parse_formula("max(R[Year].Country.Greece)").unwrap();
        assert!(
            candidates.iter().any(|c| c.formula == gold),
            "gold query missing from {} candidates",
            candidates.len()
        );
        // A last-row reading is also among the candidates (a plausible
        // alternative the user must choose between).
        let alternative = wtq_dcs::parse_formula("R[Year].last(Country.Greece)").unwrap();
        assert!(candidates.iter().any(|c| c.formula == alternative));
    }

    #[test]
    fn figure_nine_difference_of_counts_is_generated() {
        let table = samples::shipwrecks();
        let candidates = candidates_for(
            "How many more ships were wrecked in Lake Huron than in Erie?",
            &table,
        );
        let gold =
            wtq_dcs::parse_formula("sub(count(Lake.\"Lake Huron\"), count(Lake.\"Lake Erie\"))")
                .unwrap();
        assert!(candidates.iter().any(|c| c.formula == gold));
    }

    #[test]
    fn all_candidates_execute_and_are_distinct() {
        let table = samples::medals();
        let candidates = candidates_for(
            "What is the difference in Total between Fiji and Tonga?",
            &table,
        );
        let mut seen = HashSet::new();
        for candidate in &candidates {
            assert!(
                seen.insert(candidate.formula.clone()),
                "duplicate candidate"
            );
            assert!(!candidate.answer.is_empty());
            assert!(wtq_dcs::eval(&candidate.formula, &table).is_ok());
        }
        assert!(candidates.len() >= 10);
        assert!(candidates.len() <= CandidateConfig::default().max_candidates);
    }

    #[test]
    fn gold_queries_of_generated_dataset_are_covered() {
        // Coverage of the gold query by the candidate pool is the analogue of
        // the paper's correctness bound; it must be high for the interactive
        // setting to help.
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mut total = 0usize;
        let mut covered = 0usize;
        for domain in all_domains().iter().take(5) {
            let table = generate_table(domain, 0, &mut rng);
            let questions = generate_questions(&table, 10, &mut rng);
            for q in questions {
                total += 1;
                let analysis = analyze_question(&q.question, &table);
                let candidates =
                    generate_candidates(&analysis, &table, &CandidateConfig::default());
                if candidates
                    .iter()
                    .any(|c| formulas_equivalent(&c.formula, &q.formula))
                {
                    covered += 1;
                }
            }
        }
        assert!(total >= 30, "not enough questions generated ({total})");
        let coverage = covered as f64 / total as f64;
        assert!(
            coverage >= 0.6,
            "candidate generation covers only {covered}/{total} gold queries"
        );
    }

    #[test]
    fn candidate_pool_is_capped() {
        let table = samples::medals();
        let config = CandidateConfig {
            max_candidates: 25,
            ..CandidateConfig::default()
        };
        let analysis = analyze_question(
            "What is the difference in Gold between Fiji, Tonga, Samoa and Tahiti?",
            &table,
        );
        let candidates = generate_candidates(&analysis, &table, &config);
        assert!(candidates.len() <= 25);
    }
}
