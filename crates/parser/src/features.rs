//! Feature extraction `φ(x, T, z)` (Eq. 4), over interned feature ids.
//!
//! Features are sparse id → value pairs combining three signal sources, in
//! the style of the log-linear parsers the paper builds on:
//!
//! * **formula shape** — which operators the candidate uses, its size,
//! * **alignment with the question** — whether the candidate's constants and
//!   columns are actually mentioned in the question, and whether question
//!   trigger phrases ("how many", "difference", "highest", "right after", …)
//!   agree with the operators used,
//! * **denotation** — the type and size of the candidate's answer, matched
//!   against the question's wh-words.
//!
//! The hot path is engineered around two invariants:
//!
//! * a [`FeatureVec`] is a `Vec<(FeatureId, f64)>` sorted by id, and static
//!   ids are assigned in name order ([`crate::symbols`]), so iterating it
//!   reproduces the old `BTreeMap<String, f64>` iteration order exactly —
//!   dot products sum in the same sequence and scores stay bit-identical to
//!   [`crate::reference::extract_features_reference`];
//! * everything that depends only on the *question* (trigger phrase hits,
//!   wh-word expectations, link texts, column mentions) is computed once per
//!   question in a [`QuestionContext`] and shared by every candidate,
//!   instead of being re-derived per candidate as it historically was.
//!
//! A single [`Formula::visit`] walk per candidate replaces the historical
//! ~9 allocating `sub_formulas()` traversals.

use std::collections::BTreeMap;

use wtq_dcs::{AggregateOp, Answer, Formula, SuperlativeOp};
use wtq_table::{Table, Value};

use crate::candidates::RawCandidate;
use crate::lexicon::QuestionAnalysis;
use crate::symbols::{
    family_id, op_id, root_index, scalar_id, trig_id, FeatureId, Scalar, TrigSlot, NUM_ROOTS,
    NUM_TRIGGERS, TRIGGER_PHRASES, WANTS_NUMBER_PHRASES,
};

/// A sparse feature vector: `(FeatureId, f64)` pairs sorted by id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureVec {
    entries: Vec<(FeatureId, f64)>,
}

impl FeatureVec {
    /// An empty feature vector.
    pub fn new() -> FeatureVec {
        FeatureVec::default()
    }

    /// Build from unsorted pairs: stable-sorts by id and merges duplicate
    /// ids by summing their values in push order (the semantics of the old
    /// `bump` accumulation). `pairs` is drained but keeps its capacity, so
    /// callers can reuse it as a scratch buffer.
    pub fn from_pairs(pairs: &mut Vec<(FeatureId, f64)>) -> FeatureVec {
        pairs.sort_by_key(|(id, _)| *id);
        let mut entries: Vec<(FeatureId, f64)> = Vec::with_capacity(pairs.len());
        for &(id, value) in pairs.iter() {
            match entries.last_mut() {
                Some((last, total)) if *last == id => *total += value,
                _ => entries.push((id, value)),
            }
        }
        pairs.clear();
        FeatureVec { entries }
    }

    /// The `(id, value)` pairs in ascending id order.
    pub fn iter(&self) -> std::slice::Iter<'_, (FeatureId, f64)> {
        self.entries.iter()
    }

    /// Number of present features.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no features are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value of a feature by id.
    pub fn value(&self, id: FeatureId) -> Option<f64> {
        self.entries
            .binary_search_by_key(&id, |(i, _)| *i)
            .ok()
            .map(|index| self.entries[index].1)
    }

    /// The value of a feature by name (test/debug convenience).
    pub fn get(&self, name: &str) -> Option<f64> {
        crate::symbols::lookup(name).and_then(|id| self.value(id))
    }

    /// Dot product against a dense weight vector indexed by feature id.
    /// Ids beyond the dense vector's length weigh zero. Terms are summed in
    /// id order — which is name order — matching the reference walk.
    pub fn dot_dense(&self, weights: &[f64]) -> f64 {
        self.entries
            .iter()
            .map(|&(id, value)| value * weights.get(id.index()).copied().unwrap_or(0.0))
            .sum()
    }

    /// Merge-walk dot product against another sparse vector (both sorted by
    /// id), for sparse-sparse scoring without densification.
    pub fn dot_sparse(&self, other: &FeatureVec) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut total = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            let (a, av) = self.entries[i];
            let (b, bv) = other.entries[j];
            match a.cmp(&b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    total += av * bv;
                    i += 1;
                    j += 1;
                }
            }
        }
        total
    }

    /// The vector as a name-keyed map (diagnostics and differential tests).
    pub fn to_named(&self) -> BTreeMap<String, f64> {
        self.entries
            .iter()
            .map(|&(id, value)| (crate::symbols::feature_name(id), value))
            .collect()
    }
}

/// Everything about the *question* that feature extraction needs, computed
/// once per question instead of once per candidate: trigger-phrase hits,
/// the numeric-answer expectation, lowered value-link texts, rendered
/// number literals and per-column mention flags.
#[derive(Debug, Clone)]
pub struct QuestionContext {
    triggered: [bool; NUM_TRIGGERS],
    wants_number: bool,
    link_texts: Vec<String>,
    number_texts: Vec<String>,
    /// `(header, header appears in the lowered question)` per table column.
    columns: Vec<(String, bool)>,
}

impl QuestionContext {
    /// Precompute the question-level feature signals for one analysis.
    pub fn new(analysis: &QuestionAnalysis, table: &Table) -> QuestionContext {
        let mut triggered = [false; NUM_TRIGGERS];
        for (slot, phrases) in triggered.iter_mut().zip(TRIGGER_PHRASES.iter()) {
            *slot = analysis.mentions_any(phrases);
        }
        QuestionContext {
            triggered,
            wants_number: analysis.mentions_any(&WANTS_NUMBER_PHRASES),
            link_texts: analysis
                .value_links
                .iter()
                .map(|link| link.value.to_string().to_lowercase())
                .collect(),
            number_texts: analysis
                .numbers
                .iter()
                .map(|n| Value::Num(*n).to_string())
                .collect(),
            columns: (0..table.num_columns())
                .map(|column| {
                    let header = table.column_name(column).to_string();
                    let mentioned = analysis.lowered.contains(&header.to_lowercase());
                    (header, mentioned)
                })
                .collect(),
        }
    }

    /// Whether `column` (a header as mentioned by a formula) appears in the
    /// question. Falls back to a direct substring test for names that are
    /// not table headers (hand-written formulas), preserving the historical
    /// per-candidate semantics.
    fn column_mentioned(&self, analysis: &QuestionAnalysis, column: &str) -> bool {
        self.columns
            .iter()
            .find(|(header, _)| header == column)
            .map(|(_, mentioned)| *mentioned)
            .unwrap_or_else(|| analysis.lowered.contains(&column.to_lowercase()))
    }
}

/// Operator usage collected by the single formula walk.
#[derive(Debug, Default)]
struct WalkFacts {
    op_counts: [u32; NUM_ROOTS],
    max_aggregate: bool,
    min_aggregate: bool,
    sum: bool,
    avg: bool,
    argmax: bool,
    argmin: bool,
    last: bool,
    first: bool,
}

impl WalkFacts {
    fn size(&self) -> u32 {
        self.op_counts.iter().sum()
    }

    fn has(&self, root: usize) -> bool {
        self.op_counts[root] > 0
    }
}

/// Extract the feature vector of one candidate (fresh per-question context
/// and scratch — the convenience entry point; hot loops use
/// [`extract_features_in`] with a shared [`QuestionContext`]).
pub fn extract_features(
    analysis: &QuestionAnalysis,
    table: &Table,
    candidate: &RawCandidate,
) -> FeatureVec {
    let context = QuestionContext::new(analysis, table);
    extract_features_in(
        analysis,
        &context,
        candidate,
        &mut Vec::new(),
        &mut Vec::new(),
    )
}

/// Extract the feature vector of one candidate, reusing the question-level
/// `context` and the caller's scratch buffers (`pairs` for the unsorted
/// feature pairs, `constants` for the formula's lowered constants; both are
/// cleared before use and drained after).
pub fn extract_features_in(
    analysis: &QuestionAnalysis,
    context: &QuestionContext,
    candidate: &RawCandidate,
    pairs: &mut Vec<(FeatureId, f64)>,
    constants: &mut Vec<String>,
) -> FeatureVec {
    pairs.clear();
    constants.clear();
    let formula = &candidate.formula;

    // ---- Formula shape (one pre-order walk) ---------------------------------
    let mut facts = WalkFacts::default();
    formula.visit(&mut |sub| {
        facts.op_counts[root_index(sub)] += 1;
        match sub {
            Formula::Const(value) => constants.push(value.to_string().to_lowercase()),
            Formula::Aggregate { op, .. } => match op {
                AggregateOp::Max => facts.max_aggregate = true,
                AggregateOp::Min => facts.min_aggregate = true,
                AggregateOp::Sum => facts.sum = true,
                AggregateOp::Avg => facts.avg = true,
                AggregateOp::Count => {}
            },
            Formula::SuperlativeRecords { op, .. } | Formula::CompareValues { op, .. } => {
                match op {
                    SuperlativeOp::Argmax => facts.argmax = true,
                    SuperlativeOp::Argmin => facts.argmin = true,
                }
            }
            Formula::RecordIndexSuperlative { op, .. } => match op {
                SuperlativeOp::Argmax => facts.last = true,
                SuperlativeOp::Argmin => facts.first = true,
            },
            _ => {}
        }
    });
    pairs.push((family_id(root_index(formula)), 1.0));
    for (root, &count) in facts.op_counts.iter().enumerate() {
        if count > 0 {
            // The reference bumps `op:{label}` by 1.0 per occurrence; small
            // integer sums are exact, so emitting the count is identical.
            pairs.push((op_id(root), count as f64));
        }
    }
    pairs.push((scalar_id(Scalar::Size), facts.size() as f64 / 8.0));

    // ---- Question / formula alignment ---------------------------------------
    let mut grounded = 0usize;
    let mut ungrounded = 0usize;
    for constant in constants.iter() {
        if analysis.lowered.contains(constant.as_str())
            || context.number_texts.iter().any(|text| text == constant)
        {
            grounded += 1;
        } else {
            ungrounded += 1;
        }
    }
    if ungrounded > 0 {
        pairs.push((scalar_id(Scalar::ConstNotInQuestion), ungrounded as f64));
    }
    if !constants.is_empty() {
        pairs.push((
            scalar_id(Scalar::ConstCoverage),
            grounded as f64 / constants.len() as f64,
        ));
    }
    // Linked values the formula fails to use (a correct parse usually uses
    // every linked entity).
    let unused_links = context
        .link_texts
        .iter()
        .filter(|text| !constants.iter().any(|c| c == *text))
        .count();
    pairs.push((scalar_id(Scalar::UnusedLinks), unused_links as f64));

    let mut columns_in_question = 0usize;
    let mut columns_missing = 0usize;
    let mentioned_columns = formula.columns_mentioned();
    for column in &mentioned_columns {
        if context.column_mentioned(analysis, column) {
            columns_in_question += 1;
        } else {
            columns_missing += 1;
        }
    }
    if columns_missing > 0 {
        pairs.push((scalar_id(Scalar::ColNotInQuestion), columns_missing as f64));
    }
    if !mentioned_columns.is_empty() {
        pairs.push((
            scalar_id(Scalar::ColCoverage),
            columns_in_question as f64 / mentioned_columns.len() as f64,
        ));
    }

    // ---- Trigger phrase / operator agreement --------------------------------
    // Kind indexes follow `symbols::TRIGGER_KINDS`.
    let uses_agg_max = facts.max_aggregate || facts.argmax || facts.last;
    let uses_agg_min = facts.min_aggregate || facts.argmin || facts.first;
    let used: [bool; NUM_TRIGGERS] = [
        facts.has(9),  // count
        facts.has(15), // difference
        uses_agg_max,  // aggregate_max
        uses_agg_min,  // aggregate_min
        facts.sum,
        facts.avg,
        facts.has(5),                                       // prev
        facts.has(6),                                       // next
        facts.last || facts.max_aggregate || facts.argmax,  // last
        facts.first || facts.min_aggregate || facts.argmin, // first
        facts.has(14),                                      // compare → compare_values
        facts.has(13),                                      // most_common
        facts.has(8),                                       // union
        facts.has(7),                                       // intersect
        facts.has(3),                                       // comparison → compare_join
    ];
    for (kind, &used_kind) in used.iter().enumerate() {
        match (context.triggered[kind], used_kind) {
            (true, true) => pairs.push((trig_id(TrigSlot::Agree, kind), 1.0)),
            (true, false) => pairs.push((trig_id(TrigSlot::TriggeredUnused, kind), 1.0)),
            (false, true) => pairs.push((trig_id(TrigSlot::UsedUntriggered, kind), 1.0)),
            (false, false) => {}
        }
    }

    // ---- Denotation features -------------------------------------------------
    match &candidate.answer {
        Answer::Number(_) => pairs.push((scalar_id(Scalar::AnswerNumber), 1.0)),
        Answer::Values(values) => {
            pairs.push((scalar_id(Scalar::AnswerValues), 1.0));
            pairs.push((
                scalar_id(Scalar::AnswerSize),
                (values.len() as f64).min(6.0) / 6.0,
            ));
            if values.len() == 1 {
                pairs.push((scalar_id(Scalar::AnswerSingleton), 1.0));
            }
            if values.iter().all(|v| v.as_number().is_some()) {
                pairs.push((scalar_id(Scalar::AnswerNumericValues), 1.0));
            }
        }
        Answer::Records(_) => pairs.push((scalar_id(Scalar::AnswerRecords), 1.0)),
    }
    let is_number = matches!(candidate.answer, Answer::Number(_));
    match (context.wants_number, is_number) {
        (true, true) => pairs.push((scalar_id(Scalar::WhNumberMatch), 1.0)),
        (true, false) => pairs.push((scalar_id(Scalar::WhNumberMismatch), 1.0)),
        (false, true) => pairs.push((scalar_id(Scalar::WhUnexpectedNumber), 1.0)),
        (false, false) => {}
    }

    constants.clear();
    FeatureVec::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{generate_candidates, CandidateConfig};
    use crate::lexicon::analyze_question;
    use crate::reference::extract_features_reference;
    use wtq_dcs::parse_formula;
    use wtq_table::samples;

    fn candidate(table: &Table, formula_text: &str) -> RawCandidate {
        let formula = parse_formula(formula_text).unwrap();
        let answer = Answer::from_denotation(&wtq_dcs::eval(&formula, table).unwrap());
        RawCandidate { formula, answer }
    }

    #[test]
    fn gold_candidate_gets_agreement_features() {
        let table = samples::olympics();
        let analysis = analyze_question("Greece held its last Olympics in what year?", &table);
        let gold = candidate(&table, "max(R[Year].Country.Greece)");
        let features = extract_features(&analysis, &table, &gold);
        assert!(
            features.get("trig+op:last").is_some(),
            "features: {:?}",
            features.to_named()
        );
        assert_eq!(features.get("const_coverage"), Some(1.0));
        assert!(features.get("unused_links").unwrap_or(9.0) < 1.0);
    }

    #[test]
    fn ungrounded_constants_are_penalized() {
        let table = samples::olympics();
        let analysis = analyze_question("Greece held its last Olympics in what year?", &table);
        let wrong = candidate(&table, "max(R[Year].Country.China)");
        let features = extract_features(&analysis, &table, &wrong);
        assert!(features.get("const_not_in_question").unwrap_or(0.0) >= 1.0);
        assert!(features.get("unused_links").unwrap_or(0.0) >= 1.0);
    }

    #[test]
    fn trigger_mismatch_features_fire() {
        let table = samples::shipwrecks();
        let analysis = analyze_question(
            "How many more ships were wrecked in Lake Huron than in Lake Erie?",
            &table,
        );
        // A plain count ignores the "difference" trigger.
        let plain = candidate(&table, "count(Lake.\"Lake Huron\")");
        let features = extract_features(&analysis, &table, &plain);
        assert!(features.get("trig-op:difference").is_some());
        // The gold difference agrees with it.
        let gold = candidate(
            &table,
            "sub(count(Lake.\"Lake Huron\"), count(Lake.\"Lake Erie\"))",
        );
        let features = extract_features(&analysis, &table, &gold);
        assert!(features.get("trig+op:difference").is_some());
        assert!(features.get("wh:number_match").is_some());
    }

    #[test]
    fn feature_extraction_is_total_over_generated_candidates() {
        let table = samples::medals();
        let analysis = analyze_question(
            "What is the difference in Total between Fiji and Tonga?",
            &table,
        );
        let candidates = generate_candidates(&analysis, &table, &CandidateConfig::default());
        assert!(!candidates.is_empty());
        for candidate in &candidates {
            let features = extract_features(&analysis, &table, candidate);
            assert!(!features.is_empty());
            assert!(features.iter().all(|(_, v)| v.is_finite()));
        }
    }

    #[test]
    fn interned_features_match_the_string_keyed_reference() {
        // The differential contract, checked here on the fixed sample suite
        // (the proptest suite fuzzes it over random tables/questions): same
        // names, and bit-identical values.
        let cases = [
            (
                samples::olympics(),
                "Greece held its last Olympics in what year?",
            ),
            (
                samples::shipwrecks(),
                "How many more ships were wrecked in Lake Huron than in Lake Erie?",
            ),
            (
                samples::medals(),
                "What is the difference in Total between Fiji and Tonga?",
            ),
        ];
        for (table, question) in cases {
            let analysis = analyze_question(question, &table);
            let candidates = generate_candidates(&analysis, &table, &CandidateConfig::default());
            assert!(!candidates.is_empty());
            for candidate in &candidates {
                let interned = extract_features(&analysis, &table, candidate).to_named();
                let reference = extract_features_reference(&analysis, &table, candidate);
                assert_eq!(
                    interned.len(),
                    reference.len(),
                    "feature sets differ on {}",
                    candidate.formula
                );
                for ((a_name, a_value), (b_name, b_value)) in interned.iter().zip(reference.iter())
                {
                    assert_eq!(a_name, b_name);
                    assert_eq!(
                        a_value.to_bits(),
                        b_value.to_bits(),
                        "{a_name} differs on {}",
                        candidate.formula
                    );
                }
            }
        }
    }

    #[test]
    fn dot_products_use_only_present_features_and_match_reference() {
        let table = samples::olympics();
        let analysis = analyze_question("Greece held its last Olympics in what year?", &table);
        let gold = candidate(&table, "max(R[Year].Country.Greece)");
        let features = extract_features(&analysis, &table, &gold);
        // Dense weights: 1.0 everywhere a feature exists plus a weight on a
        // feature the vector does not contain.
        let model = crate::model::LogLinearModel::with_prior();
        let reference_weights = model.sorted_weights();
        let dense_score = model.score(&features);
        let reference_score = crate::reference::dot_reference(
            &crate::reference::extract_features_reference(&analysis, &table, &gold),
            &reference_weights,
        );
        assert_eq!(dense_score.to_bits(), reference_score.to_bits());
        // Sparse-sparse merge walk agrees with the dense product.
        let mut weight_pairs: Vec<(FeatureId, f64)> = reference_weights
            .iter()
            .map(|(name, value)| (crate::symbols::intern(name), *value))
            .collect();
        let sparse_weights = FeatureVec::from_pairs(&mut weight_pairs);
        assert!((features.dot_sparse(&sparse_weights) - dense_score).abs() < 1e-12);
    }
}
