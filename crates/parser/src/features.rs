//! Feature extraction `φ(x, T, z)` (Eq. 4).
//!
//! Features are sparse name → value pairs combining three signal sources, in
//! the style of the log-linear parsers the paper builds on:
//!
//! * **formula shape** — which operators the candidate uses, its size,
//! * **alignment with the question** — whether the candidate's constants and
//!   columns are actually mentioned in the question, and whether question
//!   trigger phrases ("how many", "difference", "highest", "right after", …)
//!   agree with the operators used,
//! * **denotation** — the type and size of the candidate's answer, matched
//!   against the question's wh-words.

use std::collections::BTreeMap;

use wtq_dcs::{AggregateOp, Answer, Formula, SuperlativeOp};
use wtq_table::Table;

use crate::candidates::RawCandidate;
use crate::lexicon::QuestionAnalysis;

/// A sparse feature vector.
pub type FeatureVector = BTreeMap<String, f64>;

fn bump(features: &mut FeatureVector, name: &str, delta: f64) {
    *features.entry(name.to_string()).or_insert(0.0) += delta;
}

fn set(features: &mut FeatureVector, name: &str, value: f64) {
    features.insert(name.to_string(), value);
}

/// Root operator label used for the `family:` feature.
fn root_label(formula: &Formula) -> &'static str {
    match formula {
        Formula::Const(_) => "const",
        Formula::AllRecords => "all_records",
        Formula::Join { .. } => "join",
        Formula::CompareJoin { .. } => "compare_join",
        Formula::ColumnValues { .. } => "column_values",
        Formula::Prev(_) => "prev",
        Formula::Next(_) => "next",
        Formula::Intersect(_, _) => "intersect",
        Formula::Union(_, _) => "union",
        Formula::Aggregate {
            op: AggregateOp::Count,
            ..
        } => "count",
        Formula::Aggregate { .. } => "aggregate",
        Formula::SuperlativeRecords { .. } => "superlative",
        Formula::RecordIndexSuperlative { .. } => "index_superlative",
        Formula::MostCommonValue { .. } => "most_common",
        Formula::CompareValues { .. } => "compare_values",
        Formula::Sub(_, _) => "difference",
    }
}

fn operators_used(formula: &Formula) -> Vec<&'static str> {
    formula
        .sub_formulas()
        .iter()
        .map(|f| root_label(f))
        .collect()
}

/// Constants appearing anywhere in the formula, rendered as lower-case text.
fn constants_of(formula: &Formula) -> Vec<String> {
    formula
        .sub_formulas()
        .iter()
        .filter_map(|f| match f {
            Formula::Const(value) => Some(value.to_string().to_lowercase()),
            _ => None,
        })
        .collect()
}

/// Extract the feature vector of one candidate.
pub fn extract_features(
    analysis: &QuestionAnalysis,
    table: &Table,
    candidate: &RawCandidate,
) -> FeatureVector {
    let mut features = FeatureVector::new();
    let formula = &candidate.formula;

    // ---- Formula shape -----------------------------------------------------
    set(
        &mut features,
        &format!("family:{}", root_label(formula)),
        1.0,
    );
    let operators = operators_used(formula);
    for op in &operators {
        bump(&mut features, &format!("op:{op}"), 1.0);
    }
    set(&mut features, "size", formula.size() as f64 / 8.0);

    // ---- Question / formula alignment ---------------------------------------
    let constants = constants_of(formula);
    let mut grounded = 0usize;
    for constant in &constants {
        if analysis.lowered.contains(constant)
            || analysis
                .numbers
                .iter()
                .any(|n| wtq_table::Value::Num(*n).to_string() == *constant)
        {
            grounded += 1;
        } else {
            bump(&mut features, "const_not_in_question", 1.0);
        }
    }
    if !constants.is_empty() {
        set(
            &mut features,
            "const_coverage",
            grounded as f64 / constants.len() as f64,
        );
    }
    // Linked values the formula fails to use (a correct parse usually uses
    // every linked entity).
    let unused_links = analysis
        .value_links
        .iter()
        .filter(|link| {
            let text = link.value.to_string().to_lowercase();
            !constants.iter().any(|c| c == &text)
        })
        .count();
    set(&mut features, "unused_links", unused_links as f64);

    let mut columns_in_question = 0usize;
    let mentioned_columns = formula.columns_mentioned();
    for column in &mentioned_columns {
        if analysis.lowered.contains(&column.to_lowercase()) {
            columns_in_question += 1;
        } else {
            bump(&mut features, "col_not_in_question", 1.0);
        }
    }
    if !mentioned_columns.is_empty() {
        set(
            &mut features,
            "col_coverage",
            columns_in_question as f64 / mentioned_columns.len() as f64,
        );
    }
    let _ = table;

    // ---- Trigger phrase / operator agreement --------------------------------
    let triggers: &[(&str, &[&str])] = &[
        (
            "count",
            &["how many", "number of", "how often", "how many times"],
        ),
        (
            "difference",
            &["difference", "how many more", "how much more", "more rows"],
        ),
        (
            "aggregate_max",
            &["highest", "most", "largest", "greatest", "maximum", "top"],
        ),
        (
            "aggregate_min",
            &["lowest", "least", "smallest", "fewest", "minimum", "bottom"],
        ),
        (
            "sum",
            &["total", "sum", "in total", "altogether", "combined"],
        ),
        ("avg", &["average", "mean"]),
        ("prev", &["before", "above", "previous", "prior"]),
        ("next", &["after", "below", "next", "following"]),
        ("last", &["last", "latest", "final", "most recent"]),
        ("first", &["first", "earliest"]),
        (
            "compare",
            &[
                "higher", "lower", "older", "younger", "bigger", "smaller", "longer", "shorter",
            ],
        ),
        (
            "most_common",
            &[
                "most common",
                "appears the most",
                "most frequent",
                "most often",
            ],
        ),
        ("union", &[" or "]),
        ("intersect", &[" and also ", " both "]),
        (
            "comparison",
            &[
                "more than",
                "less than",
                "at least",
                "at most",
                "over",
                "under",
            ],
        ),
    ];
    let has_op = |name: &str| operators.contains(&name);
    let uses_max_aggregate = formula.sub_formulas().iter().any(|f| {
        matches!(
            f,
            Formula::Aggregate {
                op: AggregateOp::Max,
                ..
            }
        )
    });
    let uses_min_aggregate = formula.sub_formulas().iter().any(|f| {
        matches!(
            f,
            Formula::Aggregate {
                op: AggregateOp::Min,
                ..
            }
        )
    });
    let uses_sum = formula.sub_formulas().iter().any(|f| {
        matches!(
            f,
            Formula::Aggregate {
                op: AggregateOp::Sum,
                ..
            }
        )
    });
    let uses_avg = formula.sub_formulas().iter().any(|f| {
        matches!(
            f,
            Formula::Aggregate {
                op: AggregateOp::Avg,
                ..
            }
        )
    });
    let uses_argmax = formula.sub_formulas().iter().any(|f| {
        matches!(
            f,
            Formula::SuperlativeRecords {
                op: SuperlativeOp::Argmax,
                ..
            } | Formula::CompareValues {
                op: SuperlativeOp::Argmax,
                ..
            }
        )
    });
    let uses_argmin = formula.sub_formulas().iter().any(|f| {
        matches!(
            f,
            Formula::SuperlativeRecords {
                op: SuperlativeOp::Argmin,
                ..
            } | Formula::CompareValues {
                op: SuperlativeOp::Argmin,
                ..
            }
        )
    });
    let uses_last = formula.sub_formulas().iter().any(|f| {
        matches!(
            f,
            Formula::RecordIndexSuperlative {
                op: SuperlativeOp::Argmax,
                ..
            }
        )
    });
    let uses_first = formula.sub_formulas().iter().any(|f| {
        matches!(
            f,
            Formula::RecordIndexSuperlative {
                op: SuperlativeOp::Argmin,
                ..
            }
        )
    });
    for (kind, phrases) in triggers {
        let triggered = analysis.mentions_any(phrases);
        let used = match *kind {
            "count" => has_op("count"),
            "difference" => has_op("difference"),
            "aggregate_max" => uses_max_aggregate || uses_argmax || uses_last,
            "aggregate_min" => uses_min_aggregate || uses_argmin || uses_first,
            "sum" => uses_sum,
            "avg" => uses_avg,
            "prev" => has_op("prev"),
            "next" => has_op("next"),
            "last" => uses_last || uses_max_aggregate || uses_argmax,
            "first" => uses_first || uses_min_aggregate || uses_argmin,
            "compare" => has_op("compare_values"),
            "most_common" => has_op("most_common"),
            "union" => has_op("union"),
            "intersect" => has_op("intersect"),
            "comparison" => has_op("compare_join"),
            _ => false,
        };
        match (triggered, used) {
            (true, true) => bump(&mut features, &format!("trig+op:{kind}"), 1.0),
            (true, false) => bump(&mut features, &format!("trig-op:{kind}"), 1.0),
            (false, true) => bump(&mut features, &format!("op-trig:{kind}"), 1.0),
            (false, false) => {}
        }
    }

    // ---- Denotation features -------------------------------------------------
    match &candidate.answer {
        Answer::Number(_) => set(&mut features, "answer:number", 1.0),
        Answer::Values(values) => {
            set(&mut features, "answer:values", 1.0);
            set(
                &mut features,
                "answer_size",
                (values.len() as f64).min(6.0) / 6.0,
            );
            if values.len() == 1 {
                set(&mut features, "answer:singleton", 1.0);
            }
            if values.iter().all(|v| v.as_number().is_some()) {
                set(&mut features, "answer:numeric_values", 1.0);
            }
        }
        Answer::Records(_) => set(&mut features, "answer:records", 1.0),
    }
    let wants_number = analysis.mentions_any(&["how many", "how much", "number of", "difference"]);
    let is_number = matches!(candidate.answer, Answer::Number(_));
    match (wants_number, is_number) {
        (true, true) => set(&mut features, "wh:number_match", 1.0),
        (true, false) => set(&mut features, "wh:number_mismatch", 1.0),
        (false, true) => set(&mut features, "wh:unexpected_number", 1.0),
        (false, false) => {}
    }

    features
}

/// Dot product of a feature vector with a weight vector.
pub fn dot(features: &FeatureVector, weights: &BTreeMap<String, f64>) -> f64 {
    features
        .iter()
        .map(|(name, value)| value * weights.get(name).copied().unwrap_or(0.0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{generate_candidates, CandidateConfig};
    use crate::lexicon::analyze_question;
    use wtq_dcs::parse_formula;
    use wtq_table::samples;

    fn candidate(table: &Table, formula_text: &str) -> RawCandidate {
        let formula = parse_formula(formula_text).unwrap();
        let answer = Answer::from_denotation(&wtq_dcs::eval(&formula, table).unwrap());
        RawCandidate { formula, answer }
    }

    #[test]
    fn gold_candidate_gets_agreement_features() {
        let table = samples::olympics();
        let analysis = analyze_question("Greece held its last Olympics in what year?", &table);
        let gold = candidate(&table, "max(R[Year].Country.Greece)");
        let features = extract_features(&analysis, &table, &gold);
        assert!(
            features.contains_key("trig+op:last"),
            "features: {features:?}"
        );
        assert_eq!(features.get("const_coverage"), Some(&1.0));
        assert!(features.get("unused_links").copied().unwrap_or(9.0) < 1.0);
    }

    #[test]
    fn ungrounded_constants_are_penalized() {
        let table = samples::olympics();
        let analysis = analyze_question("Greece held its last Olympics in what year?", &table);
        let wrong = candidate(&table, "max(R[Year].Country.China)");
        let features = extract_features(&analysis, &table, &wrong);
        assert!(
            features
                .get("const_not_in_question")
                .copied()
                .unwrap_or(0.0)
                >= 1.0
        );
        assert!(features.get("unused_links").copied().unwrap_or(0.0) >= 1.0);
    }

    #[test]
    fn trigger_mismatch_features_fire() {
        let table = samples::shipwrecks();
        let analysis = analyze_question(
            "How many more ships were wrecked in Lake Huron than in Lake Erie?",
            &table,
        );
        // A plain count ignores the "difference" trigger.
        let plain = candidate(&table, "count(Lake.\"Lake Huron\")");
        let features = extract_features(&analysis, &table, &plain);
        assert!(features.contains_key("trig-op:difference"));
        // The gold difference agrees with it.
        let gold = candidate(
            &table,
            "sub(count(Lake.\"Lake Huron\"), count(Lake.\"Lake Erie\"))",
        );
        let features = extract_features(&analysis, &table, &gold);
        assert!(features.contains_key("trig+op:difference"));
        assert!(features.contains_key("wh:number_match"));
    }

    #[test]
    fn feature_extraction_is_total_over_generated_candidates() {
        let table = samples::medals();
        let analysis = analyze_question(
            "What is the difference in Total between Fiji and Tonga?",
            &table,
        );
        let candidates = generate_candidates(&analysis, &table, &CandidateConfig::default());
        assert!(!candidates.is_empty());
        for candidate in &candidates {
            let features = extract_features(&analysis, &table, candidate);
            assert!(!features.is_empty());
            assert!(features.values().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn dot_product_uses_only_present_features() {
        let mut features = FeatureVector::new();
        features.insert("a".into(), 2.0);
        features.insert("b".into(), -1.0);
        let mut weights = BTreeMap::new();
        weights.insert("a".to_string(), 0.5);
        weights.insert("c".to_string(), 100.0);
        assert_eq!(dot(&features, &weights), 1.0);
    }
}
