//! The log-linear candidate model and the parser front-end.
//!
//! The parser defines the distribution of Eq. 4,
//! `p_θ(z | x, T) ∝ exp(φ(x, T, z)ᵀ θ)`, over the candidates `Z_x` produced
//! for a question. At deployment the candidates are ranked by score and the
//! top-k are shown to the user with their explanations (§6.3).
//!
//! Weights are stored **densely**, indexed by [`FeatureId`]: scoring one
//! candidate is a walk over its sorted feature pairs with direct slot loads
//! instead of the historical per-feature B-tree string lookups. A parallel
//! `present` bitmap remembers which features *exist* in the model (including
//! explicit zeros the L1 regularizer shrank), so the serialized form — a
//! name-keyed map — stays byte-identical to the original
//! `BTreeMap<String, f64>` representation.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use wtq_dcs::{Answer, Evaluator, Formula};
use wtq_table::{Table, TableIndex};

use crate::candidates::{
    generate_candidates, generate_candidates_timed, CandidateConfig, RawCandidate,
};
use crate::features::{extract_features_in, FeatureVec, QuestionContext};
use crate::lexicon::{analyze_question, link_stage, tokenize_stage, QuestionAnalysis};
use crate::scratch::ScratchSpace;
use crate::stats::{record_parse, ParseSpans};
use crate::symbols::{self, FeatureId, TRIGGER_KINDS};

/// A scored candidate query.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The candidate lambda DCS formula.
    pub formula: Formula,
    /// Its canonical answer on the table.
    pub answer: Answer,
    /// The extracted feature vector `φ(x, T, z)`.
    pub features: FeatureVec,
    /// The model score `φᵀθ`.
    pub score: f64,
}

/// Log-linear model parameters `θ`: a dense weight vector indexed by
/// [`FeatureId`], plus a presence bitmap tracking which features the model
/// carries (zero-weight entries included — the historical sparse map kept
/// L1-shrunk zeros, and serialization preserves them).
#[derive(Debug, Clone, Default)]
pub struct LogLinearModel {
    weights: Vec<f64>,
    present: Vec<bool>,
}

/// The serialized form of [`LogLinearModel`]: the original name-keyed map,
/// so trained-model files are byte-compatible across the interning change.
#[derive(Serialize, Deserialize)]
struct LogLinearModelRepr {
    weights: BTreeMap<String, f64>,
}

impl Serialize for LogLinearModel {
    fn to_value(&self) -> serde::Value {
        LogLinearModelRepr {
            weights: self.sorted_weights(),
        }
        .to_value()
    }
}

impl Deserialize for LogLinearModel {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let repr = LogLinearModelRepr::from_value(value)?;
        Ok(LogLinearModel::from_named_weights(repr.weights))
    }
}

impl LogLinearModel {
    /// A model with all-zero weights (uniform candidate distribution).
    pub fn new() -> Self {
        LogLinearModel::default()
    }

    /// A model with hand-set prior weights favouring question/operator
    /// agreement — the starting point the trainer improves on, and a fair
    /// stand-in for the pretrained baseline parser of [37].
    pub fn with_prior() -> Self {
        let mut model = LogLinearModel::new();
        for (name, weight) in [
            ("const_coverage", 2.0),
            ("const_not_in_question", -2.5),
            ("unused_links", -1.2),
            ("col_coverage", 0.8),
            ("wh:number_match", 0.8),
            ("wh:number_mismatch", -0.8),
            ("wh:unexpected_number", -0.4),
            ("size", -0.3),
        ] {
            model.set_weight(name, weight);
        }
        for kind in TRIGGER_KINDS {
            model.set_weight(&format!("trig+op:{kind}"), 1.0);
            model.set_weight(&format!("trig-op:{kind}"), -0.6);
            model.set_weight(&format!("op-trig:{kind}"), -0.6);
        }
        model
    }

    /// A model from a name-keyed weight map (deserialization, migration).
    pub fn from_named_weights(weights: BTreeMap<String, f64>) -> Self {
        let mut model = LogLinearModel::new();
        for (name, weight) in weights {
            model.set_weight(&name, weight);
        }
        model
    }

    fn ensure_slot(&mut self, id: FeatureId) {
        let index = id.index();
        if index >= self.weights.len() {
            self.weights.resize(index + 1, 0.0);
            self.present.resize(index + 1, false);
        }
    }

    /// The weight of one feature by name (zero when absent).
    pub fn weight(&self, name: &str) -> f64 {
        symbols::lookup(name)
            .map(|id| self.weight_by_id(id))
            .unwrap_or(0.0)
    }

    /// The weight of one feature by id (zero when absent).
    pub fn weight_by_id(&self, id: FeatureId) -> f64 {
        self.weights.get(id.index()).copied().unwrap_or(0.0)
    }

    /// Set one feature's weight by name, interning the name if needed. The
    /// feature becomes *present* (serialized even when the weight is zero).
    pub fn set_weight(&mut self, name: &str, weight: f64) {
        self.set_weight_by_id(symbols::intern(name), weight);
    }

    /// Set one feature's weight by id, marking it present.
    pub fn set_weight_by_id(&mut self, id: FeatureId, weight: f64) {
        self.ensure_slot(id);
        self.weights[id.index()] = weight;
        self.present[id.index()] = true;
    }

    /// The dense weight slice (indexed by [`FeatureId`]).
    pub fn dense_weights(&self) -> &[f64] {
        &self.weights
    }

    /// The present weights as a sorted name → weight map — the historical
    /// sparse representation (zero-weight entries included).
    pub fn sorted_weights(&self) -> BTreeMap<String, f64> {
        self.present
            .iter()
            .enumerate()
            .filter(|(_, present)| **present)
            .map(|(index, _)| {
                (
                    symbols::feature_name(FeatureId::from_index(index)),
                    self.weights[index],
                )
            })
            .collect()
    }

    /// Number of non-zero weights.
    pub fn num_parameters(&self) -> usize {
        self.present
            .iter()
            .zip(&self.weights)
            .filter(|(present, weight)| **present && **weight != 0.0)
            .count()
    }

    /// Score a feature vector (`φᵀθ`, summed in feature-id order — which is
    /// name order, so scores are bit-identical to the string-keyed walk).
    pub fn score(&self, features: &FeatureVec) -> f64 {
        features.dot_dense(&self.weights)
    }
}

/// The candidate ordering used everywhere a pool is ranked: score
/// descending, then formula size ascending, then formula text. Each side is
/// `(score, formula.size(), formula text)`. Serving
/// ([`SemanticParser::parse`]) and the trainer's per-epoch re-scoring pass
/// both sort with this function, so the two paths cannot silently diverge.
pub(crate) fn ranking_order(a: (f64, usize, &str), b: (f64, usize, &str)) -> std::cmp::Ordering {
    b.0.partial_cmp(&a.0)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.1.cmp(&b.1))
        .then_with(|| a.2.cmp(b.2))
}

/// Softmax over candidate scores — the normalized `p_θ(z | x, T)` of Eq. 4.
pub fn softmax(scores: &[f64]) -> Vec<f64> {
    if scores.is_empty() {
        return Vec::new();
    }
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
    let total: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / total).collect()
}

/// Structural equivalence of formulas modulo the order of commutative
/// operands (union, intersection): the notion of "same query" used when
/// checking whether a candidate matches a gold or annotated query.
pub fn formulas_equivalent(a: &Formula, b: &Formula) -> bool {
    normalize(a) == normalize(b)
}

fn normalize(formula: &Formula) -> Formula {
    match formula {
        Formula::Union(a, b) => {
            let (a, b) = (normalize(a), normalize(b));
            if a.to_string() <= b.to_string() {
                Formula::Union(Box::new(a), Box::new(b))
            } else {
                Formula::Union(Box::new(b), Box::new(a))
            }
        }
        Formula::Intersect(a, b) => {
            let (a, b) = (normalize(a), normalize(b));
            if a.to_string() <= b.to_string() {
                Formula::Intersect(Box::new(a), Box::new(b))
            } else {
                Formula::Intersect(Box::new(b), Box::new(a))
            }
        }
        Formula::Join { column, values } => Formula::Join {
            column: column.clone(),
            values: Box::new(normalize(values)),
        },
        Formula::CompareJoin { column, op, value } => Formula::CompareJoin {
            column: column.clone(),
            op: *op,
            value: Box::new(normalize(value)),
        },
        Formula::ColumnValues { column, records } => Formula::ColumnValues {
            column: column.clone(),
            records: Box::new(normalize(records)),
        },
        Formula::Prev(sub) => Formula::Prev(Box::new(normalize(sub))),
        Formula::Next(sub) => Formula::Next(Box::new(normalize(sub))),
        Formula::Aggregate { op, sub } => Formula::Aggregate {
            op: *op,
            sub: Box::new(normalize(sub)),
        },
        Formula::SuperlativeRecords {
            op,
            records,
            column,
        } => Formula::SuperlativeRecords {
            op: *op,
            records: Box::new(normalize(records)),
            column: column.clone(),
        },
        Formula::RecordIndexSuperlative { op, records } => Formula::RecordIndexSuperlative {
            op: *op,
            records: Box::new(normalize(records)),
        },
        Formula::MostCommonValue { op, values, column } => Formula::MostCommonValue {
            op: *op,
            values: Box::new(normalize(values)),
            column: column.clone(),
        },
        Formula::CompareValues {
            op,
            values,
            key_column,
            value_column,
        } => Formula::CompareValues {
            op: *op,
            values: Box::new(normalize(values)),
            key_column: key_column.clone(),
            value_column: value_column.clone(),
        },
        Formula::Sub(a, b) => Formula::Sub(Box::new(normalize(a)), Box::new(normalize(b))),
        Formula::Const(_) | Formula::AllRecords => formula.clone(),
    }
}

/// The semantic parser: candidate generation plus log-linear ranking.
#[derive(Debug, Clone)]
pub struct SemanticParser {
    /// Model parameters.
    pub model: LogLinearModel,
    /// Candidate-generation limits.
    pub config: CandidateConfig,
}

impl Default for SemanticParser {
    fn default() -> Self {
        SemanticParser::with_prior()
    }
}

impl SemanticParser {
    /// A parser with zero weights (candidates in generation order).
    pub fn untrained() -> Self {
        SemanticParser {
            model: LogLinearModel::new(),
            config: CandidateConfig::default(),
        }
    }

    /// A parser with the hand-set prior weights (the "baseline parser").
    pub fn with_prior() -> Self {
        SemanticParser {
            model: LogLinearModel::with_prior(),
            config: CandidateConfig::default(),
        }
    }

    /// Analyze a question against a table (exposed for feature reuse).
    pub fn analyze(&self, question: &str, table: &Table) -> QuestionAnalysis {
        analyze_question(question, table)
    }

    /// Parse a question into ranked candidates `Z_x`, highest score first.
    ///
    /// One [`TableIndex`] is built per call and shared between entity
    /// linking and candidate execution; the execution session's denotation
    /// cache is shared across the whole candidate pool.
    pub fn parse(&self, question: &str, table: &Table) -> Vec<Candidate> {
        self.parse_with_index(question, table, Arc::new(TableIndex::new(table)))
    }

    /// Like [`SemanticParser::parse`] but sharing an already-built index of
    /// `table`, so loops parsing many questions over the same tables (train,
    /// deploy) do not rebuild indexes — pair with [`wtq_table::IndexCache`].
    pub fn parse_with_index(
        &self,
        question: &str,
        table: &Table,
        index: Arc<TableIndex>,
    ) -> Vec<Candidate> {
        self.parse_in_session(question, &Evaluator::with_index(table, index))
    }

    /// Like [`SemanticParser::parse_with_index`] but reusing an existing
    /// evaluator session (and its cross-candidate denotation cache) — the
    /// entry point a per-request `Session` holds on to, so several questions
    /// answered against the same table within one request share both the
    /// index and the memoized record bases.
    pub fn parse_in_session(&self, question: &str, evaluator: &Evaluator<'_>) -> Vec<Candidate> {
        self.parse_in_session_with(question, evaluator, &mut ScratchSpace::new())
    }

    /// Like [`SemanticParser::parse_in_session`] but reusing the caller's
    /// [`ScratchSpace`], so a session answering many questions allocates its
    /// working buffers once. Records the per-stage timing spans into the
    /// process-wide [`crate::parse_stats`] counters.
    pub fn parse_in_session_with(
        &self,
        question: &str,
        evaluator: &Evaluator<'_>,
        scratch: &mut ScratchSpace,
    ) -> Vec<Candidate> {
        let start = Instant::now();
        let (lowered, tokens) = tokenize_stage(question);
        let tokenized = Instant::now();
        let analysis = link_stage(lowered, tokens, evaluator.kb());
        let linked = Instant::now();
        let mut eval_ns = 0u64;
        let raw = generate_candidates_timed(&analysis, evaluator, &self.config, &mut eval_ns);
        let generated = Instant::now();
        let (candidates, features_ns, score_ns) =
            self.rank_timed(raw, &analysis, evaluator.table(), scratch);
        record_parse(&ParseSpans {
            tokenize_ns: (tokenized - start).as_nanos() as u64,
            lexicon_ns: (linked - tokenized).as_nanos() as u64,
            candidates_ns: ((generated - linked).as_nanos() as u64).saturating_sub(eval_ns),
            eval_ns,
            features_ns,
            score_ns,
        });
        candidates
    }

    /// Parse from an existing analysis (avoids re-linking when the caller
    /// already has one).
    pub fn parse_analyzed(&self, analysis: &QuestionAnalysis, table: &Table) -> Vec<Candidate> {
        let raw = generate_candidates(analysis, table, &self.config);
        self.rank(raw, analysis, table)
    }

    /// Score and rank raw candidates with the log-linear model.
    fn rank(
        &self,
        raw: Vec<RawCandidate>,
        analysis: &QuestionAnalysis,
        table: &Table,
    ) -> Vec<Candidate> {
        self.rank_timed(raw, analysis, table, &mut ScratchSpace::new())
            .0
    }

    /// Score and rank raw candidates, returning the feature-extraction and
    /// scoring span durations.
    ///
    /// The ordering lives in [`ranking_order`], shared with the trainer's
    /// re-scoring pass so serving and training can never rank differently.
    /// Question-level signals are hoisted into one [`QuestionContext`];
    /// ranking keys (`formula.size()`, `formula.to_string()`) are computed
    /// once per candidate instead of inside the sort comparator.
    fn rank_timed(
        &self,
        raw: Vec<RawCandidate>,
        analysis: &QuestionAnalysis,
        table: &Table,
        scratch: &mut ScratchSpace,
    ) -> (Vec<Candidate>, u64, u64) {
        let start = Instant::now();
        let context = QuestionContext::new(analysis, table);
        scratch.features.clear();
        for candidate in &raw {
            scratch.features.push(extract_features_in(
                analysis,
                &context,
                candidate,
                &mut scratch.pairs,
                &mut scratch.constants,
            ));
        }
        let extracted = Instant::now();
        let mut scored: Vec<(Candidate, usize, String)> = raw
            .into_iter()
            .zip(scratch.features.drain(..))
            .map(|(RawCandidate { formula, answer }, features)| {
                let score = self.model.score(&features);
                let size = formula.size();
                let key = formula.to_string();
                (
                    Candidate {
                        formula,
                        answer,
                        features,
                        score,
                    },
                    size,
                    key,
                )
            })
            .collect();
        scored.sort_by(|(a, a_size, a_key), (b, b_size, b_key)| {
            ranking_order((a.score, *a_size, a_key), (b.score, *b_size, b_key))
        });
        let candidates = scored
            .into_iter()
            .map(|(candidate, _, _)| candidate)
            .collect();
        let done = Instant::now();
        (
            candidates,
            (extracted - start).as_nanos() as u64,
            (done - extracted).as_nanos() as u64,
        )
    }

    /// The top-k candidates (the set shown to users at deployment).
    pub fn parse_top_k(&self, question: &str, table: &Table, k: usize) -> Vec<Candidate> {
        let mut candidates = self.parse(question, table);
        candidates.truncate(k);
        candidates
    }

    /// Normalized probabilities `p_θ(z | x, T)` over a candidate list.
    pub fn probabilities(&self, candidates: &[Candidate]) -> Vec<f64> {
        softmax(&candidates.iter().map(|c| c.score).collect::<Vec<f64>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtq_dcs::parse_formula;
    use wtq_table::samples;

    #[test]
    fn prior_parser_ranks_grounded_candidates_above_ungrounded_ones() {
        let table = samples::olympics();
        let parser = SemanticParser::with_prior();
        let candidates = parser.parse("Greece held its last Olympics in what year?", &table);
        assert!(candidates.len() >= 5);
        let gold = parse_formula("max(R[Year].Country.Greece)").unwrap();
        let gold_rank = candidates
            .iter()
            .position(|c| c.formula == gold)
            .expect("gold generated");
        let china = parse_formula("max(R[Year].Country.China)").unwrap();
        if let Some(china_rank) = candidates.iter().position(|c| c.formula == china) {
            assert!(
                gold_rank < china_rank,
                "ungrounded candidate outranked the gold query"
            );
        }
        // Scores are sorted descending.
        for pair in candidates.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn probabilities_are_a_distribution() {
        let table = samples::medals();
        let parser = SemanticParser::with_prior();
        let candidates = parser.parse(
            "What is the difference in Total between Fiji and Tonga?",
            &table,
        );
        let probabilities = parser.probabilities(&candidates);
        assert_eq!(probabilities.len(), candidates.len());
        let total: f64 = probabilities.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(probabilities.iter().all(|p| *p >= 0.0 && *p <= 1.0));
    }

    #[test]
    fn top_k_truncates() {
        let table = samples::medals();
        let parser = SemanticParser::with_prior();
        let top = parser.parse_top_k("What is the highest Gold total?", &table, 7);
        assert!(top.len() <= 7);
        assert!(!top.is_empty());
    }

    #[test]
    fn softmax_handles_extremes() {
        assert!(softmax(&[]).is_empty());
        let p = softmax(&[1000.0, -1000.0]);
        assert!((p[0] - 1.0).abs() < 1e-9);
        assert!(p[1].abs() < 1e-9);
        let uniform = softmax(&[0.0, 0.0, 0.0, 0.0]);
        assert!(uniform.iter().all(|p| (p - 0.25).abs() < 1e-12));
    }

    #[test]
    fn formula_equivalence_ignores_commutative_order() {
        let a = parse_formula("(Country.Greece or Country.China)").unwrap();
        let b = parse_formula("(Country.China or Country.Greece)").unwrap();
        assert!(formulas_equivalent(&a, &b));
        let c = parse_formula("(City.London and Country.UK)").unwrap();
        let d = parse_formula("(Country.UK and City.London)").unwrap();
        assert!(formulas_equivalent(&c, &d));
        let e = parse_formula("sub(count(City.Athens), count(City.Paris))").unwrap();
        let f = parse_formula("sub(count(City.Paris), count(City.Athens))").unwrap();
        assert!(
            !formulas_equivalent(&e, &f),
            "difference is not commutative"
        );
        // Nested operands normalize too.
        let g = parse_formula("count((Country.Greece or Country.China))").unwrap();
        let h = parse_formula("count((Country.China or Country.Greece))").unwrap();
        assert!(formulas_equivalent(&g, &h));
    }

    #[test]
    fn model_parameter_bookkeeping() {
        let mut model = LogLinearModel::new();
        assert_eq!(model.num_parameters(), 0);
        model.set_weight("x", 1.5);
        model.set_weight("y", 0.0);
        assert_eq!(model.num_parameters(), 1);
        assert_eq!(model.weight("x"), 1.5);
        assert_eq!(model.weight("missing"), 0.0);
        assert!(LogLinearModel::with_prior().num_parameters() > 10);
        // "y" is present (serialized) even though it weighs zero.
        assert!(model.sorted_weights().contains_key("y"));
    }

    #[test]
    fn model_serialization_is_the_historical_name_keyed_map() {
        let model = LogLinearModel::with_prior();
        let json = serde_json::to_string(&model).expect("model serialize");
        // The wire form is {"weights":{"name":weight,...}} with names in
        // sorted order — exactly what the BTreeMap-backed struct produced.
        assert!(json.starts_with("{\"weights\":{"));
        assert!(json.contains("\"const_coverage\":2"));
        let back: LogLinearModel = serde_json::from_str(&json).expect("model parse");
        assert_eq!(back.sorted_weights(), model.sorted_weights());
        assert_eq!(
            serde_json::to_string(&back).expect("reserialize"),
            json,
            "roundtrip must be byte-identical"
        );
    }

    #[test]
    fn scratch_reuse_parses_identically() {
        let table = samples::olympics();
        let parser = SemanticParser::with_prior();
        let evaluator = Evaluator::new(&table);
        let mut scratch = ScratchSpace::new();
        let questions = [
            "Greece held its last Olympics in what year?",
            "Which city hosted in 2008?",
            "How many times did Athens host?",
        ];
        for question in questions {
            let fresh = parser.parse_in_session(question, &evaluator);
            let reused = parser.parse_in_session_with(question, &evaluator, &mut scratch);
            assert_eq!(fresh.len(), reused.len());
            for (a, b) in fresh.iter().zip(&reused) {
                assert_eq!(a.formula, b.formula);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!(a.features, b.features);
            }
        }
    }
}
