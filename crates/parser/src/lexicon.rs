//! Question analysis: tokenization and entity linking against the table.
//!
//! The floating-parser family of semantic parsers anchors candidate formulas
//! to *links* between question phrases and the table: cell values, column
//! headers and literal numbers. This module finds those links with greedy
//! longest-match n-gram lookup over the knowledge-base view of the table.

use std::collections::HashSet;

use wtq_table::{KnowledgeBase, Table, Value};

/// A question phrase linked to a table value in a specific column.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueLink {
    /// Column the value occurs in.
    pub column: usize,
    /// The linked cell value.
    pub value: Value,
    /// The question phrase that produced the link.
    pub phrase: String,
}

/// Everything the candidate generator needs to know about a question.
#[derive(Debug, Clone)]
pub struct QuestionAnalysis {
    /// Lower-cased question tokens.
    pub tokens: Vec<String>,
    /// The raw question, lower-cased (for phrase-level trigger tests).
    pub lowered: String,
    /// Question phrases linked to table cell values.
    pub value_links: Vec<ValueLink>,
    /// Columns whose header text appears in the question.
    pub column_links: Vec<usize>,
    /// Literal numbers mentioned in the question.
    pub numbers: Vec<f64>,
}

impl QuestionAnalysis {
    /// Whether any of `words` occurs in the question (word or phrase level).
    pub fn mentions_any(&self, words: &[&str]) -> bool {
        words.iter().any(|w| {
            if w.contains(' ') {
                self.lowered.contains(w)
            } else {
                self.tokens.iter().any(|t| t == w)
            }
        })
    }

    /// Whether the question contains the given phrase.
    pub fn mentions(&self, phrase: &str) -> bool {
        self.mentions_any(&[phrase])
    }

    /// Value links grouped so that at most `limit` links are kept, preferring
    /// longer matched phrases (more specific links) first.
    pub fn top_value_links(&self, limit: usize) -> Vec<&ValueLink> {
        let mut links: Vec<&ValueLink> = self.value_links.iter().collect();
        links.sort_by_key(|link| std::cmp::Reverse(link.phrase.len()));
        links.truncate(limit);
        links
    }
}

/// Canonicalize a question for comparison and cache keying: lowercase,
/// collapse whitespace runs to single spaces, trim, and strip trailing
/// sentence punctuation (`?`, `!`, and `.` — except a `.` that follows a
/// digit, which [`tokenize`] treats as part of a decimal number).
///
/// This is the **single source of truth** for question identity: answer
/// caches key on `normalize_question(q)` and question analysis itself runs
/// on the normalized text, so two questions with equal normalizations are
/// *guaranteed* to produce identical analyses (and therefore identical
/// parses and answers) — the normalization cannot drift from parse-time
/// tokenization because parsing consumes its output. The function is
/// idempotent, and deliberately conservative: it never touches interior
/// punctuation, so `tokenize(normalize_question(q)) == tokenize(q)` holds
/// for every question.
pub fn normalize_question(question: &str) -> String {
    let mut out = String::with_capacity(question.len());
    let mut pending_space = false;
    for c in question.chars() {
        if c.is_whitespace() {
            pending_space = !out.is_empty();
        } else {
            if pending_space {
                out.push(' ');
                pending_space = false;
            }
            out.extend(c.to_lowercase());
        }
    }
    loop {
        let mut chars = out.chars().rev();
        let strip = match chars.next() {
            Some('?') | Some('!') | Some(' ') => true,
            Some('.') => !chars.next().is_some_and(|p| p.is_ascii_digit()),
            _ => false,
        };
        if !strip {
            break;
        }
        out.pop();
    }
    out
}

/// Tokenize a question: lowercase, split on whitespace and punctuation while
/// keeping decimal numbers and hyphenated words intact.
pub fn tokenize(question: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in question.chars() {
        let keep = c.is_alphanumeric()
            || c == '-'
            || (c == '.' && current.chars().all(|x| x.is_ascii_digit()) && !current.is_empty());
        if keep {
            current.extend(c.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

const STOP_WORDS: &[&str] = &[
    "the", "a", "an", "of", "in", "is", "are", "was", "were", "for", "to", "and", "or", "with",
    "do", "does", "did", "what", "which", "who", "whose", "when", "how", "many", "much", "that",
    "have", "has", "had", "than", "also", "row", "rows", "table", "column", "value", "values",
];

/// Analyze a question against a table: tokenization, entity links, column
/// links and numbers. Builds a fresh [`KnowledgeBase`] (and so a fresh table
/// index); callers that already hold one should use
/// [`analyze_question_with`] to share it.
pub fn analyze_question(question: &str, table: &Table) -> QuestionAnalysis {
    analyze_question_with(question, &KnowledgeBase::new(table))
}

/// Analyze a question against an existing knowledge-base view, reusing its
/// shared table index instead of rebuilding it per question.
pub fn analyze_question_with(question: &str, kb: &KnowledgeBase<'_>) -> QuestionAnalysis {
    let (lowered, tokens) = tokenize_stage(question);
    link_stage(lowered, tokens, kb)
}

/// The tokenize stage of question analysis: canonicalize and tokenize.
/// Split out so the parse pipeline can time it separately from linking.
pub(crate) fn tokenize_stage(question: &str) -> (String, Vec<String>) {
    // Analysis runs on the canonical question: tokenization is invariant
    // under normalization, and `lowered` becoming the normalized text is
    // what makes answers a function of the normalized question — the
    // property answer caches rely on.
    let lowered = normalize_question(question);
    let tokens = tokenize(&lowered);
    (lowered, tokens)
}

/// The entity-linking stage of question analysis: value links, column links
/// and literal numbers against the knowledge-base view.
pub(crate) fn link_stage(
    lowered: String,
    tokens: Vec<String>,
    kb: &KnowledgeBase<'_>,
) -> QuestionAnalysis {
    let table = kb.table();
    // Column links: a column is linked when its full lower-cased header
    // appears as a phrase in the question.
    let mut column_links = Vec::new();
    for column in 0..table.num_columns() {
        let header = table.column_name(column).to_lowercase();
        if !header.is_empty() && lowered.contains(&header) {
            column_links.push(column);
        }
    }

    // Value links: greedy longest-first n-gram matching (n = 4..1) against
    // the KB; a token consumed by a longer match is not reused for shorter
    // ones so "New Caledonia" does not also link "Caledonia".
    let mut value_links: Vec<ValueLink> = Vec::new();
    let mut consumed: HashSet<usize> = HashSet::new();
    for n in (1..=4usize).rev() {
        if n > tokens.len() {
            continue;
        }
        for start in 0..=(tokens.len() - n) {
            if (start..start + n).any(|i| consumed.contains(&i)) {
                continue;
            }
            let phrase = tokens[start..start + n].join(" ");
            if n == 1 && (STOP_WORDS.contains(&phrase.as_str()) || phrase.len() < 2) {
                continue;
            }
            let links = kb.link_text(&phrase);
            if links.is_empty() {
                continue;
            }
            for (column, value) in links {
                if !value_links
                    .iter()
                    .any(|l| l.column == column && l.value == value)
                {
                    value_links.push(ValueLink {
                        column,
                        value,
                        phrase: phrase.clone(),
                    });
                }
            }
            for i in start..start + n {
                consumed.insert(i);
            }
        }
    }

    // Partial links: an unconsumed content token that appears as a word
    // inside a cell value still links to it ("Erie" → "Lake Erie", matching
    // how the paper's Figure 9 question refers to the lake). The distinct
    // values are computed once per column, not once per token.
    let distinct_per_column: Vec<Vec<Value>> = (0..table.num_columns())
        .map(|column| table.distinct_column_values(column))
        .collect();
    for (i, token) in tokens.iter().enumerate() {
        if consumed.contains(&i) || token.len() < 3 || STOP_WORDS.contains(&token.as_str()) {
            continue;
        }
        if token.parse::<f64>().is_ok() {
            continue;
        }
        for (column, distinct) in distinct_per_column.iter().enumerate() {
            for value in distinct {
                let text = value.to_string().to_lowercase();
                let is_word_inside = text != *token
                    && text
                        .split(|c: char| !c.is_alphanumeric())
                        .any(|word| word == token);
                if is_word_inside
                    && !value_links
                        .iter()
                        .any(|l| l.column == column && l.value == *value)
                {
                    value_links.push(ValueLink {
                        column,
                        value: value.clone(),
                        phrase: token.clone(),
                    });
                }
            }
        }
    }

    // Numbers mentioned literally in the question.
    let mut numbers: Vec<f64> = tokens
        .iter()
        .filter_map(|t| t.parse::<f64>().ok())
        .collect();
    numbers.dedup();

    QuestionAnalysis {
        tokens,
        lowered,
        value_links,
        column_links,
        numbers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtq_table::samples;

    #[test]
    fn tokenization_keeps_numbers_and_hyphens() {
        let tokens = tokenize("How many rows have a Rating of 7.5 in the USL A-League?");
        assert!(tokens.contains(&"7.5".to_string()));
        assert!(tokens.contains(&"a-league".to_string()));
        assert!(tokens.contains(&"how".to_string()));
        assert!(!tokens.iter().any(|t| t.contains('?')));
    }

    #[test]
    fn normalize_question_canonicalizes_and_is_idempotent() {
        assert_eq!(
            normalize_question("  Which   YEAR did Greece host?  "),
            "which year did greece host"
        );
        assert_eq!(normalize_question("How many games?!"), "how many games");
        assert_eq!(normalize_question("It ended."), "it ended");
        // A '.' after a digit is part of a decimal number, not punctuation.
        assert_eq!(normalize_question("costs 2."), "costs 2.");
        for q in ["Which year did Greece host?", "costs 2.", "", "   ", "a?!."] {
            let once = normalize_question(q);
            assert_eq!(normalize_question(&once), once, "idempotent on {q:?}");
        }
    }

    #[test]
    fn tokenize_is_invariant_under_normalization() {
        // The guarantee cache keys depend on: normalizing first never
        // changes what the tokenizer produces.
        for q in [
            "How many rows have a Rating of 7.5 in the USL A-League?",
            "  Which   YEAR did Greece host?  ",
            "costs 2.",
            "Was it Lake Huron, or Lake Erie?!",
            "what is -3.5 plus 2",
            "",
        ] {
            assert_eq!(tokenize(&normalize_question(q)), tokenize(q), "on {q:?}");
        }
    }

    #[test]
    fn variant_phrasings_share_an_analysis() {
        let table = samples::olympics();
        let a = analyze_question("Greece held its last Olympics in what year?", &table);
        let b = analyze_question("  greece held its LAST Olympics in what year  ", &table);
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.lowered, b.lowered);
        assert_eq!(a.value_links, b.value_links);
        assert_eq!(a.column_links, b.column_links);
        assert_eq!(a.numbers, b.numbers);
    }

    #[test]
    fn figure_one_question_links() {
        let table = samples::olympics();
        let analysis = analyze_question("Greece held its last Olympics in what year?", &table);
        let country = table.column_index("Country").unwrap();
        assert!(analysis
            .value_links
            .iter()
            .any(|l| l.column == country && l.value == Value::str("Greece")));
        // The Year column header appears in the question.
        assert!(analysis
            .column_links
            .contains(&table.column_index("Year").unwrap()));
        assert!(analysis.mentions("last"));
        assert!(!analysis.mentions("difference"));
    }

    #[test]
    fn multiword_values_link_as_phrases() {
        let table = samples::shipwrecks();
        let analysis = analyze_question(
            "How many more ships were wrecked in Lake Huron than in Lake Erie?",
            &table,
        );
        let lake = table.column_index("Lake").unwrap();
        let linked: Vec<&str> = analysis
            .value_links
            .iter()
            .filter(|l| l.column == lake)
            .map(|l| l.phrase.as_str())
            .collect();
        assert!(linked.contains(&"lake huron"));
        assert!(linked.contains(&"lake erie"));
    }

    #[test]
    fn numbers_are_extracted() {
        let table = samples::squad();
        let analysis = analyze_question("How many players played more than 4 games?", &table);
        assert_eq!(analysis.numbers, vec![4.0]);
        assert!(analysis
            .column_links
            .contains(&table.column_index("Games").unwrap()));
    }

    #[test]
    fn stop_words_do_not_link() {
        let table = samples::usl_league();
        let analysis = analyze_question(
            "What was the last year the team was a part of the USL A-League?",
            &table,
        );
        // "a" must not link even though values contain the letter; the league
        // itself must link as a long phrase.
        let league = table.column_index("League").unwrap();
        assert!(analysis
            .value_links
            .iter()
            .any(|l| l.column == league && l.value == Value::str("USL A-League")));
        assert!(analysis.value_links.iter().all(|l| l.phrase.len() >= 2));
    }

    #[test]
    fn top_value_links_prefers_longer_phrases() {
        let table = samples::shipwrecks();
        let analysis =
            analyze_question("Was the Argus lost on Lake Huron or Lake Superior?", &table);
        let top = analysis.top_value_links(2);
        assert_eq!(top.len(), 2);
        assert!(top
            .iter()
            .all(|l| l.phrase.contains("lake") || l.phrase == "argus"));
    }

    #[test]
    fn mentions_any_supports_phrases() {
        let table = samples::olympics();
        let analysis = analyze_question("How many times did Athens host?", &table);
        assert!(analysis.mentions_any(&["how many", "number of"]));
        assert!(!analysis.mentions_any(&["difference", "more than"]));
    }
}
