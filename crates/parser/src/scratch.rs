//! Reusable per-session scratch buffers for the parse hot path.
//!
//! Parsing one question allocates the same handful of working buffers —
//! the unsorted feature-pair builder, the formula-constant list, the
//! per-candidate feature/score staging area — once per question when a
//! fresh scratch is used, or **zero** times per question when a serving
//! session threads one [`ScratchSpace`] through every parse (the buffers
//! keep their high-water-mark capacity).

use crate::features::FeatureVec;
use crate::symbols::FeatureId;

/// Reusable working memory for [`crate::SemanticParser::parse_in_session_with`].
/// Plain `Default`-constructed state; never holds results across calls,
/// only capacity.
#[derive(Debug, Default)]
pub struct ScratchSpace {
    /// Unsorted `(id, value)` pairs for one candidate's features.
    pub(crate) pairs: Vec<(FeatureId, f64)>,
    /// Lowered constant texts of one candidate's formula.
    pub(crate) constants: Vec<String>,
    /// Extracted feature vectors of the whole pool, in generation order.
    pub(crate) features: Vec<FeatureVec>,
}

impl ScratchSpace {
    /// A fresh, empty scratch space.
    pub fn new() -> ScratchSpace {
        ScratchSpace::default()
    }
}
