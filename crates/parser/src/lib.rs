//! # wtq-parser
//!
//! A log-linear semantic parser mapping natural-language questions over a web
//! table to ranked candidate lambda DCS queries. It stands in for the
//! state-of-the-art parser of Zhang et al. [37] used by the paper (§2, §6.2):
//! the paper's contribution only requires a parser that (a) produces a ranked
//! list of candidate formal queries, (b) is imperfect at rank 1, and (c) can
//! be retrained from question–answer pairs (weak supervision, Eq. 6) and from
//! question–query annotations procured through query explanations (Eq. 7–8).
//!
//! Pipeline:
//!
//! 1. [`lexicon`] links question tokens to table cells, column headers and
//!    numbers,
//! 2. [`candidates`] composes typed lambda DCS formulas anchored to those
//!    links (joins, comparisons, projections, aggregates, superlatives,
//!    differences, …), keeping only formulas that execute to a non-empty
//!    result,
//! 3. [`features`] extracts the sparse feature vector `φ(x, T, z)` of Eq. 4
//!    as interned `(FeatureId, f64)` pairs over the [`symbols`] feature
//!    symbol table,
//! 4. [`model`] scores candidates with a log-linear distribution
//!    `p_θ(z | x, T) ∝ exp(φ(x, T, z)ᵀ θ)` (dense weights indexed by
//!    [`FeatureId`]) and ranks them,
//! 5. [`train`] optimizes `θ` with AdaGrad and L1 regularization using the
//!    weak-supervision objective of Eq. 6, or the annotation-aware objective
//!    of Eq. 8 when user feedback is available.
//!
//! Feature ids are assigned in lexicographic name order, so every id-ordered
//! walk (scoring, serialization, gradient updates) reproduces the historical
//! string-keyed pipeline bit for bit — pinned by [`reference`], which keeps
//! the original `BTreeMap<String, f64>` implementation alive as a
//! differential oracle. [`stats`] exposes per-stage parse timing spans and
//! [`scratch`] carries the reusable per-session working buffers.

pub mod candidates;
pub mod features;
pub mod lexicon;
pub mod model;
pub mod reference;
pub mod scratch;
pub mod stats;
pub mod symbols;
pub mod train;

pub use candidates::{generate_candidates, generate_candidates_with, CandidateConfig};
pub use features::{extract_features, FeatureVec, QuestionContext};
pub use lexicon::{analyze_question, analyze_question_with, normalize_question, QuestionAnalysis};
pub use model::{formulas_equivalent, Candidate, LogLinearModel, SemanticParser};
pub use scratch::ScratchSpace;
pub use stats::{parse_stats, reset_parse_stats, take_last_parse_stats, ParseStats};
pub use symbols::{feature_name, intern, lookup, FeatureId};
pub use train::{ParserEvaluation, TrainConfig, TrainExample, Trainer};
