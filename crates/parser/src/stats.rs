//! Parse-pipeline observability: process-wide timing spans for each stage
//! of question parsing.
//!
//! Every [`crate::SemanticParser::parse_in_session`] call is decomposed
//! into monotonic-clock spans — tokenize, lexicon (entity linking),
//! candidate composition, candidate execution (`eval`), feature extraction
//! and scoring/ranking — accumulated into plain relaxed atomics (one batch
//! of `fetch_add`s per question, nothing on the per-candidate path) and
//! snapshotted by [`parse_stats`] into a serializable [`ParseStats`] that
//! the core engine embeds in its stats surface, mirroring
//! `wtq_sql::PlannerStats`.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

static QUESTIONS: AtomicU64 = AtomicU64::new(0);
static TOKENIZE_NS: AtomicU64 = AtomicU64::new(0);
static LEXICON_NS: AtomicU64 = AtomicU64::new(0);
static CANDIDATES_NS: AtomicU64 = AtomicU64::new(0);
static EVAL_NS: AtomicU64 = AtomicU64::new(0);
static FEATURES_NS: AtomicU64 = AtomicU64::new(0);
static SCORE_NS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of the parse-stage timing counters.
/// Serializable so stats endpoints can embed it directly; all spans are
/// cumulative nanoseconds across every question parsed by the process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseStats {
    /// Questions parsed end to end (`parse_in_session` calls).
    pub questions: u64,
    /// Normalization + tokenization time.
    pub tokenize_ns: u64,
    /// Entity linking time (value links, column links, numbers).
    pub lexicon_ns: u64,
    /// Candidate composition time, *excluding* formula execution.
    pub candidates_ns: u64,
    /// Formula execution time during candidate generation (the evaluator
    /// calls that filter record bases and denote candidates).
    pub eval_ns: u64,
    /// Feature extraction time (question context + per-candidate vectors).
    pub features_ns: u64,
    /// Scoring and ranking time (dot products + sort).
    pub score_ns: u64,
}

impl ParseStats {
    /// Total time across all spans.
    pub fn total_ns(&self) -> u64 {
        self.tokenize_ns
            + self.lexicon_ns
            + self.candidates_ns
            + self.eval_ns
            + self.features_ns
            + self.score_ns
    }
}

/// One parse's span measurements, flushed to the global counters in a
/// single batch by [`record_parse`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ParseSpans {
    pub tokenize_ns: u64,
    pub lexicon_ns: u64,
    pub candidates_ns: u64,
    pub eval_ns: u64,
    pub features_ns: u64,
    pub score_ns: u64,
}

thread_local! {
    /// The most recent parse's spans on this thread, for callers that want
    /// the *per-question* breakdown (request tracing) rather than the
    /// cumulative process counters. Thread-local is exact here: a parse
    /// runs inline on its calling thread, so the caller that triggered it
    /// reads back precisely its own spans.
    static LAST_PARSE: Cell<Option<ParseSpans>> = const { Cell::new(None) };
}

pub(crate) fn record_parse(spans: &ParseSpans) {
    QUESTIONS.fetch_add(1, Ordering::Relaxed);
    TOKENIZE_NS.fetch_add(spans.tokenize_ns, Ordering::Relaxed);
    LEXICON_NS.fetch_add(spans.lexicon_ns, Ordering::Relaxed);
    CANDIDATES_NS.fetch_add(spans.candidates_ns, Ordering::Relaxed);
    EVAL_NS.fetch_add(spans.eval_ns, Ordering::Relaxed);
    FEATURES_NS.fetch_add(spans.features_ns, Ordering::Relaxed);
    SCORE_NS.fetch_add(spans.score_ns, Ordering::Relaxed);
    LAST_PARSE.with(|last| last.set(Some(*spans)));
}

/// Take the stage breakdown of the most recent parse on *this thread* (the
/// parse pipeline runs inline on its caller), clearing it so a second take
/// cannot attribute one parse to two requests. `None` when no parse has
/// completed on this thread since the last take.
pub fn take_last_parse_stats() -> Option<ParseStats> {
    LAST_PARSE.with(|last| last.take()).map(|spans| ParseStats {
        questions: 1,
        tokenize_ns: spans.tokenize_ns,
        lexicon_ns: spans.lexicon_ns,
        candidates_ns: spans.candidates_ns,
        eval_ns: spans.eval_ns,
        features_ns: spans.features_ns,
        score_ns: spans.score_ns,
    })
}

/// Snapshot the process-wide parse-stage counters.
pub fn parse_stats() -> ParseStats {
    ParseStats {
        questions: QUESTIONS.load(Ordering::Relaxed),
        tokenize_ns: TOKENIZE_NS.load(Ordering::Relaxed),
        lexicon_ns: LEXICON_NS.load(Ordering::Relaxed),
        candidates_ns: CANDIDATES_NS.load(Ordering::Relaxed),
        eval_ns: EVAL_NS.load(Ordering::Relaxed),
        features_ns: FEATURES_NS.load(Ordering::Relaxed),
        score_ns: SCORE_NS.load(Ordering::Relaxed),
    }
}

/// Reset all counters to zero. Intended for benchmark harnesses that report
/// per-section stage breakdowns; concurrent parses may interleave.
pub fn reset_parse_stats() {
    QUESTIONS.store(0, Ordering::Relaxed);
    TOKENIZE_NS.store(0, Ordering::Relaxed);
    LEXICON_NS.store(0, Ordering::Relaxed);
    CANDIDATES_NS.store(0, Ordering::Relaxed);
    EVAL_NS.store(0, Ordering::Relaxed);
    FEATURES_NS.store(0, Ordering::Relaxed);
    SCORE_NS.store(0, Ordering::Relaxed);
}
