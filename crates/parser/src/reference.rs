//! The string-keyed reference pipeline (executable specification).
//!
//! This module preserves the original `BTreeMap<String, f64>` feature
//! extraction, scoring, ranking and AdaGrad training, exactly as they were
//! before feature names were interned ([`crate::symbols`]). It exists for
//! the same two reasons as `wtq_dcs::reference`:
//!
//! 1. **Differential testing** — the proptest suites assert that the
//!    interned pipeline produces candidate scores, ranking orders and
//!    trained weights *byte-identical* to this implementation on random
//!    tables and questions.
//! 2. **Benchmark baseline** — the `parse_regression` CI gate and the
//!    `parsing` experiment section report interned-vs-string speedups
//!    against this implementation.
//!
//! Keep this module boring: it must stay a faithful copy of the historical
//! behavior, string allocations, B-tree walks, repeated `sub_formulas()`
//! traversals, `to_string()` in the sort comparator and all.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wtq_dcs::{AggregateOp, Answer, Evaluator, Formula, SuperlativeOp};
use wtq_table::{Catalog, IndexCache, Table};

use crate::candidates::{generate_candidates_with, CandidateConfig, RawCandidate};
use crate::lexicon::{analyze_question_with, QuestionAnalysis};
use crate::model::{softmax, LogLinearModel};
use crate::train::{reward, TrainConfig, TrainExample};

/// The original sparse feature vector: name → value.
pub type ReferenceFeatures = BTreeMap<String, f64>;

fn bump(features: &mut ReferenceFeatures, name: &str, delta: f64) {
    *features.entry(name.to_string()).or_insert(0.0) += delta;
}

fn set(features: &mut ReferenceFeatures, name: &str, value: f64) {
    features.insert(name.to_string(), value);
}

/// Root operator label used for the `family:` feature.
fn root_label(formula: &Formula) -> &'static str {
    match formula {
        Formula::Const(_) => "const",
        Formula::AllRecords => "all_records",
        Formula::Join { .. } => "join",
        Formula::CompareJoin { .. } => "compare_join",
        Formula::ColumnValues { .. } => "column_values",
        Formula::Prev(_) => "prev",
        Formula::Next(_) => "next",
        Formula::Intersect(_, _) => "intersect",
        Formula::Union(_, _) => "union",
        Formula::Aggregate {
            op: AggregateOp::Count,
            ..
        } => "count",
        Formula::Aggregate { .. } => "aggregate",
        Formula::SuperlativeRecords { .. } => "superlative",
        Formula::RecordIndexSuperlative { .. } => "index_superlative",
        Formula::MostCommonValue { .. } => "most_common",
        Formula::CompareValues { .. } => "compare_values",
        Formula::Sub(_, _) => "difference",
    }
}

fn operators_used(formula: &Formula) -> Vec<&'static str> {
    formula
        .sub_formulas()
        .iter()
        .map(|f| root_label(f))
        .collect()
}

/// Constants appearing anywhere in the formula, rendered as lower-case text.
fn constants_of(formula: &Formula) -> Vec<String> {
    formula
        .sub_formulas()
        .iter()
        .filter_map(|f| match f {
            Formula::Const(value) => Some(value.to_string().to_lowercase()),
            _ => None,
        })
        .collect()
}

/// Extract the feature vector of one candidate — the original string-keyed
/// extractor, kept verbatim.
pub fn extract_features_reference(
    analysis: &QuestionAnalysis,
    table: &Table,
    candidate: &RawCandidate,
) -> ReferenceFeatures {
    let mut features = ReferenceFeatures::new();
    let formula = &candidate.formula;

    // ---- Formula shape -----------------------------------------------------
    set(
        &mut features,
        &format!("family:{}", root_label(formula)),
        1.0,
    );
    let operators = operators_used(formula);
    for op in &operators {
        bump(&mut features, &format!("op:{op}"), 1.0);
    }
    set(&mut features, "size", formula.size() as f64 / 8.0);

    // ---- Question / formula alignment ---------------------------------------
    let constants = constants_of(formula);
    let mut grounded = 0usize;
    for constant in &constants {
        if analysis.lowered.contains(constant)
            || analysis
                .numbers
                .iter()
                .any(|n| wtq_table::Value::Num(*n).to_string() == *constant)
        {
            grounded += 1;
        } else {
            bump(&mut features, "const_not_in_question", 1.0);
        }
    }
    if !constants.is_empty() {
        set(
            &mut features,
            "const_coverage",
            grounded as f64 / constants.len() as f64,
        );
    }
    // Linked values the formula fails to use (a correct parse usually uses
    // every linked entity).
    let unused_links = analysis
        .value_links
        .iter()
        .filter(|link| {
            let text = link.value.to_string().to_lowercase();
            !constants.iter().any(|c| c == &text)
        })
        .count();
    set(&mut features, "unused_links", unused_links as f64);

    let mut columns_in_question = 0usize;
    let mentioned_columns = formula.columns_mentioned();
    for column in &mentioned_columns {
        if analysis.lowered.contains(&column.to_lowercase()) {
            columns_in_question += 1;
        } else {
            bump(&mut features, "col_not_in_question", 1.0);
        }
    }
    if !mentioned_columns.is_empty() {
        set(
            &mut features,
            "col_coverage",
            columns_in_question as f64 / mentioned_columns.len() as f64,
        );
    }
    let _ = table;

    // ---- Trigger phrase / operator agreement --------------------------------
    let triggers: &[(&str, &[&str])] = &[
        (
            "count",
            &["how many", "number of", "how often", "how many times"],
        ),
        (
            "difference",
            &["difference", "how many more", "how much more", "more rows"],
        ),
        (
            "aggregate_max",
            &["highest", "most", "largest", "greatest", "maximum", "top"],
        ),
        (
            "aggregate_min",
            &["lowest", "least", "smallest", "fewest", "minimum", "bottom"],
        ),
        (
            "sum",
            &["total", "sum", "in total", "altogether", "combined"],
        ),
        ("avg", &["average", "mean"]),
        ("prev", &["before", "above", "previous", "prior"]),
        ("next", &["after", "below", "next", "following"]),
        ("last", &["last", "latest", "final", "most recent"]),
        ("first", &["first", "earliest"]),
        (
            "compare",
            &[
                "higher", "lower", "older", "younger", "bigger", "smaller", "longer", "shorter",
            ],
        ),
        (
            "most_common",
            &[
                "most common",
                "appears the most",
                "most frequent",
                "most often",
            ],
        ),
        ("union", &[" or "]),
        ("intersect", &[" and also ", " both "]),
        (
            "comparison",
            &[
                "more than",
                "less than",
                "at least",
                "at most",
                "over",
                "under",
            ],
        ),
    ];
    let has_op = |name: &str| operators.contains(&name);
    let uses_max_aggregate = formula.sub_formulas().iter().any(|f| {
        matches!(
            f,
            Formula::Aggregate {
                op: AggregateOp::Max,
                ..
            }
        )
    });
    let uses_min_aggregate = formula.sub_formulas().iter().any(|f| {
        matches!(
            f,
            Formula::Aggregate {
                op: AggregateOp::Min,
                ..
            }
        )
    });
    let uses_sum = formula.sub_formulas().iter().any(|f| {
        matches!(
            f,
            Formula::Aggregate {
                op: AggregateOp::Sum,
                ..
            }
        )
    });
    let uses_avg = formula.sub_formulas().iter().any(|f| {
        matches!(
            f,
            Formula::Aggregate {
                op: AggregateOp::Avg,
                ..
            }
        )
    });
    let uses_argmax = formula.sub_formulas().iter().any(|f| {
        matches!(
            f,
            Formula::SuperlativeRecords {
                op: SuperlativeOp::Argmax,
                ..
            } | Formula::CompareValues {
                op: SuperlativeOp::Argmax,
                ..
            }
        )
    });
    let uses_argmin = formula.sub_formulas().iter().any(|f| {
        matches!(
            f,
            Formula::SuperlativeRecords {
                op: SuperlativeOp::Argmin,
                ..
            } | Formula::CompareValues {
                op: SuperlativeOp::Argmin,
                ..
            }
        )
    });
    let uses_last = formula.sub_formulas().iter().any(|f| {
        matches!(
            f,
            Formula::RecordIndexSuperlative {
                op: SuperlativeOp::Argmax,
                ..
            }
        )
    });
    let uses_first = formula.sub_formulas().iter().any(|f| {
        matches!(
            f,
            Formula::RecordIndexSuperlative {
                op: SuperlativeOp::Argmin,
                ..
            }
        )
    });
    for (kind, phrases) in triggers {
        let triggered = analysis.mentions_any(phrases);
        let used = match *kind {
            "count" => has_op("count"),
            "difference" => has_op("difference"),
            "aggregate_max" => uses_max_aggregate || uses_argmax || uses_last,
            "aggregate_min" => uses_min_aggregate || uses_argmin || uses_first,
            "sum" => uses_sum,
            "avg" => uses_avg,
            "prev" => has_op("prev"),
            "next" => has_op("next"),
            "last" => uses_last || uses_max_aggregate || uses_argmax,
            "first" => uses_first || uses_min_aggregate || uses_argmin,
            "compare" => has_op("compare_values"),
            "most_common" => has_op("most_common"),
            "union" => has_op("union"),
            "intersect" => has_op("intersect"),
            "comparison" => has_op("compare_join"),
            _ => false,
        };
        match (triggered, used) {
            (true, true) => bump(&mut features, &format!("trig+op:{kind}"), 1.0),
            (true, false) => bump(&mut features, &format!("trig-op:{kind}"), 1.0),
            (false, true) => bump(&mut features, &format!("op-trig:{kind}"), 1.0),
            (false, false) => {}
        }
    }

    // ---- Denotation features -------------------------------------------------
    match &candidate.answer {
        Answer::Number(_) => set(&mut features, "answer:number", 1.0),
        Answer::Values(values) => {
            set(&mut features, "answer:values", 1.0);
            set(
                &mut features,
                "answer_size",
                (values.len() as f64).min(6.0) / 6.0,
            );
            if values.len() == 1 {
                set(&mut features, "answer:singleton", 1.0);
            }
            if values.iter().all(|v| v.as_number().is_some()) {
                set(&mut features, "answer:numeric_values", 1.0);
            }
        }
        Answer::Records(_) => set(&mut features, "answer:records", 1.0),
    }
    let wants_number = analysis.mentions_any(&["how many", "how much", "number of", "difference"]);
    let is_number = matches!(candidate.answer, Answer::Number(_));
    match (wants_number, is_number) {
        (true, true) => set(&mut features, "wh:number_match", 1.0),
        (true, false) => set(&mut features, "wh:number_mismatch", 1.0),
        (false, true) => set(&mut features, "wh:unexpected_number", 1.0),
        (false, false) => {}
    }

    features
}

/// Dot product of a string-keyed feature vector with a string-keyed weight
/// map — the original scoring walk.
pub fn dot_reference(features: &ReferenceFeatures, weights: &BTreeMap<String, f64>) -> f64 {
    features
        .iter()
        .map(|(name, value)| value * weights.get(name).copied().unwrap_or(0.0))
        .sum()
}

/// The original model representation: a sparse name → weight map.
#[derive(Debug, Clone, Default)]
pub struct ReferenceModel {
    /// The weight map (zero-weight entries included, as historically).
    pub weights: BTreeMap<String, f64>,
}

impl ReferenceModel {
    /// The string-keyed view of an interned model.
    pub fn from_model(model: &LogLinearModel) -> Self {
        ReferenceModel {
            weights: model.sorted_weights(),
        }
    }

    /// Score a reference feature vector.
    pub fn score(&self, features: &ReferenceFeatures) -> f64 {
        dot_reference(features, &self.weights)
    }
}

/// One candidate ranked by the reference pipeline.
#[derive(Debug, Clone)]
pub struct ReferenceCandidate {
    /// The candidate lambda DCS formula.
    pub formula: Formula,
    /// Its canonical answer on the table.
    pub answer: Answer,
    /// The string-keyed feature vector.
    pub features: ReferenceFeatures,
    /// The model score.
    pub score: f64,
}

/// Rank raw candidates exactly like the original `SemanticParser::rank` —
/// including the `formula.to_string()` computed inside the sort comparator.
pub fn rank_reference(
    model: &ReferenceModel,
    raw: Vec<RawCandidate>,
    analysis: &QuestionAnalysis,
    table: &Table,
) -> Vec<ReferenceCandidate> {
    let mut candidates: Vec<ReferenceCandidate> = raw
        .into_iter()
        .map(|RawCandidate { formula, answer }| {
            let features = extract_features_reference(
                analysis,
                table,
                &RawCandidate {
                    formula: formula.clone(),
                    answer: answer.clone(),
                },
            );
            let score = model.score(&features);
            ReferenceCandidate {
                formula,
                answer,
                features,
                score,
            }
        })
        .collect();
    candidates.sort_by(|a, b| {
        crate::model::ranking_order(
            (a.score, a.formula.size(), &a.formula.to_string()),
            (b.score, b.formula.size(), &b.formula.to_string()),
        )
    });
    candidates
}

/// End-to-end reference parse sharing an evaluator session: the original
/// analyze → generate → string-keyed rank path.
pub fn parse_in_session_reference(
    model: &ReferenceModel,
    config: &CandidateConfig,
    question: &str,
    evaluator: &Evaluator<'_>,
) -> Vec<ReferenceCandidate> {
    let analysis = analyze_question_with(question, evaluator.kb());
    let raw = generate_candidates_with(&analysis, evaluator, config);
    rank_reference(model, raw, &analysis, evaluator.table())
}

/// A prepared candidate of the reference trainer (mirrors the interned
/// trainer's `PreparedCandidate`).
struct PreparedReference {
    formula: Formula,
    answer: Answer,
    features: ReferenceFeatures,
    size: usize,
    key: String,
}

fn prepare_reference(
    config: &CandidateConfig,
    indexes: &IndexCache,
    example: &TrainExample,
    catalog: &Catalog,
) -> Option<Vec<PreparedReference>> {
    let table = catalog.get(&example.table)?;
    let index = indexes.get_or_build(table);
    let evaluator = Evaluator::with_index(table, index);
    let analysis = analyze_question_with(&example.question, evaluator.kb());
    let raw = generate_candidates_with(&analysis, &evaluator, config);
    Some(
        raw.into_iter()
            .map(|raw_candidate| {
                let features = extract_features_reference(&analysis, table, &raw_candidate);
                PreparedReference {
                    size: raw_candidate.formula.size(),
                    key: raw_candidate.formula.to_string(),
                    formula: raw_candidate.formula,
                    answer: raw_candidate.answer,
                    features,
                }
            })
            .collect(),
    )
}

/// The original AdaGrad trainer over string-keyed weight maps. Training
/// schedules (shuffle order, epochs, parallel preparation) match
/// [`crate::Trainer`] exactly, so trained weights must come out
/// byte-identical.
pub struct ReferenceTrainer {
    adagrad: BTreeMap<String, f64>,
    indexes: IndexCache,
    config: TrainConfig,
}

impl ReferenceTrainer {
    /// A reference trainer with the given hyper-parameters.
    pub fn new(config: TrainConfig) -> Self {
        ReferenceTrainer {
            adagrad: BTreeMap::new(),
            indexes: IndexCache::new(),
            config,
        }
    }

    /// Train `model` in place on `examples` — the original training loop.
    pub fn train(
        &mut self,
        model: &mut ReferenceModel,
        config: &CandidateConfig,
        examples: &[TrainExample],
        catalog: &Catalog,
    ) {
        let prepared: Vec<Option<Vec<PreparedReference>>> = {
            let indexes = &self.indexes;
            wtq_runtime::run_batch(
                self.config.workers,
                examples.iter().collect(),
                |_, example| prepare_reference(config, indexes, example, catalog),
            )
        };
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        for _epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for &index in &order {
                if let Some(prepared) = &prepared[index] {
                    self.step(model, prepared, &examples[index]);
                }
            }
        }
    }

    fn step(
        &mut self,
        model: &mut ReferenceModel,
        prepared: &[PreparedReference],
        example: &TrainExample,
    ) -> bool {
        if prepared.is_empty() {
            return false;
        }
        let mut ranked: Vec<(&PreparedReference, f64)> = prepared
            .iter()
            .map(|candidate| (candidate, model.score(&candidate.features)))
            .collect();
        ranked.sort_by(|(a, a_score), (b, b_score)| {
            crate::model::ranking_order((*a_score, a.size, &a.key), (*b_score, b.size, &b.key))
        });
        let scores: Vec<f64> = ranked.iter().map(|(_, score)| *score).collect();
        let probabilities = softmax(&scores);
        let rewards: Vec<f64> = ranked
            .iter()
            .map(|(candidate, _)| reward(&candidate.formula, &candidate.answer, example))
            .collect();
        let reward_mass: f64 = probabilities.iter().zip(&rewards).map(|(p, r)| p * r).sum();
        if reward_mass <= 0.0 {
            return false;
        }
        let posterior: Vec<f64> = probabilities
            .iter()
            .zip(&rewards)
            .map(|(p, r)| p * r / reward_mass)
            .collect();
        let mut gradient: BTreeMap<String, f64> = BTreeMap::new();
        for (((candidate, _), q), p) in ranked.iter().zip(&posterior).zip(&probabilities) {
            let delta = q - p;
            if delta == 0.0 {
                continue;
            }
            for (name, value) in &candidate.features {
                *gradient.entry(name.clone()).or_insert(0.0) += delta * value;
            }
        }
        for (name, g) in gradient {
            let accumulated = self.adagrad.entry(name.clone()).or_insert(0.0);
            *accumulated += g * g;
            let step = self.config.learning_rate / (accumulated.sqrt() + 1e-8);
            let entry = model.weights.entry(name).or_insert(0.0);
            *entry += step * g;
            let shrink = self.config.l1 * step;
            if *entry > shrink {
                *entry -= shrink;
            } else if *entry < -shrink {
                *entry += shrink;
            } else {
                *entry = 0.0;
            }
        }
        true
    }
}
