//! Differential suite: every physical plan of the SQL engine — cold
//! cost-based (`Auto` with no index: columnar kernels), warm cost-based
//! (`Auto` with a pre-built index: index-vs-kernel by estimated
//! selectivity) and the pinned indexed path (`ForceIndex`) — must return
//! rows identical to the `ForceScan` reference on random tables and
//! queries, including the WHERE shapes the planner handles (`=`, numeric
//! comparisons, `IN` lists, `AND`/`OR`) and the hashed `DISTINCT` /
//! `UNION` dedup.

use proptest::prelude::*;
use wtq_dcs::CompareOp;
use wtq_sql::ast::{SqlExpr, SqlQuery, SqlSelect};
use wtq_sql::{translate, PlanMode, SqlEngine};
use wtq_table::{Table, TableBuilder, TableIndex, Value};

/// Run `query` under every plan mode (cold Auto, warm Auto, ForceIndex)
/// and check each against the ForceScan reference: same rows in the same
/// order, or the same error.
fn assert_all_modes_match_scan(
    query: &SqlQuery,
    table: &Table,
) -> std::result::Result<(), proptest::test_runner::TestCaseError> {
    let index = TableIndex::new(table);
    let cold = SqlEngine::new(table);
    let warm = SqlEngine::with_index(table, &index);
    let scanned = cold.execute(query, PlanMode::ForceScan);
    for (label, outcome) in [
        ("cold Auto", cold.execute(query, PlanMode::Auto)),
        ("warm Auto", warm.execute(query, PlanMode::Auto)),
        ("ForceIndex", warm.execute(query, PlanMode::ForceIndex)),
    ] {
        match (&outcome, &scanned) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "{} rows diverge", label),
            (Err(a), Err(b)) => {
                prop_assert_eq!(a.to_string(), b.to_string(), "{} errors diverge", label)
            }
            (a, b) => prop_assert!(false, "{label}: result kinds diverge: {a:?} vs {b:?}"),
        }
    }
    Ok(())
}

fn cell_text() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("Greece".to_string()),
        Just("Athens".to_string()),
        Just("greece".to_string()),
        Just(String::new()),
        (0i32..25).prop_map(|n| n.to_string()),
        (0i32..25).prop_map(|n| n.to_string()),
        proptest::string::string_regex("[a-z]{0,5}")
            .expect("valid regex")
            .prop_map(|s| s),
    ]
}

/// Random tables: 1–5 columns, 0–14 rows.
fn table_strategy() -> impl Strategy<Value = Table> {
    (1usize..=5, 0usize..=14).prop_flat_map(|(cols, rows)| {
        let header: Vec<String> = (0..cols).map(|i| format!("Col{i}")).collect();
        proptest::collection::vec(proptest::collection::vec(cell_text(), cols), rows).prop_map(
            move |rows| {
                let mut builder = TableBuilder::new("diff").columns(header.clone());
                for row in &rows {
                    builder = builder.row_text(row).expect("arity matches");
                }
                builder.build().expect("non-empty header")
            },
        )
    })
}

fn column_expr(cols: usize) -> impl Strategy<Value = SqlExpr> {
    prop_oneof![
        (0..cols).prop_map(|i| SqlExpr::Column(format!("Col{i}"))),
        (0..cols).prop_map(|i| SqlExpr::Column(format!("Col{i}"))),
        Just(SqlExpr::Column("Missing".to_string())),
    ]
}

fn literal() -> impl Strategy<Value = SqlExpr> {
    cell_text().prop_map(|text| SqlExpr::Literal(Value::parse(&text)))
}

/// WHERE clauses covering every planner shape plus the literal/column order
/// swap, recursively combined with AND / OR.
fn filter_strategy(cols: usize) -> impl Strategy<Value = SqlExpr> {
    let leaf = prop_oneof![
        (column_expr(cols), literal())
            .prop_map(|(column, lit)| { SqlExpr::Equals(Box::new(column), Box::new(lit)) }),
        (column_expr(cols), literal())
            .prop_map(|(column, lit)| { SqlExpr::Equals(Box::new(lit), Box::new(column)) }),
        (0u8..5, column_expr(cols), literal(), any::<bool>()).prop_map(
            |(op, column, lit, swap)| {
                let op = [
                    CompareOp::Lt,
                    CompareOp::Leq,
                    CompareOp::Gt,
                    CompareOp::Geq,
                    CompareOp::Neq,
                ][op as usize];
                if swap {
                    SqlExpr::Compare(op, Box::new(lit), Box::new(column))
                } else {
                    SqlExpr::Compare(op, Box::new(column), Box::new(lit))
                }
            }
        ),
        (
            column_expr(cols),
            proptest::collection::vec(cell_text().prop_map(|t| Value::parse(&t)), 0..4)
        )
            .prop_map(|(column, values)| SqlExpr::InList(Box::new(column), values)),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| SqlExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| SqlExpr::Or(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Planned SELECT (planned WHERE + hashed DISTINCT) equals the scan
    /// path under every plan mode, row for row, error for error.
    #[test]
    fn planned_select_matches_scan(
        (table, filter, distinct, project) in table_strategy().prop_flat_map(|t| {
            let cols = t.num_columns();
            let projection = (any::<bool>(), column_expr(cols))
                .prop_map(|(present, column)| present.then_some(column));
            (Just(t), filter_strategy(cols), any::<bool>(), projection)
        })
    ) {
        let select = SqlSelect {
            projection: project.into_iter().collect(),
            distinct,
            filter: Some(filter),
            group_by: None,
            order_by: None,
            limit: None,
        };
        let q = SqlQuery::Select(select);
        assert_all_modes_match_scan(&q, &table)?;
    }

    /// UNION dedup via the hashed row-key set equals the scan path's dedup.
    #[test]
    fn union_dedup_matches_scan(
        (table, (f1, f2), (p1, p2)) in table_strategy().prop_flat_map(|t| {
            let cols = t.num_columns();
            (
                Just(t),
                (filter_strategy(cols), filter_strategy(cols)),
                (column_expr(cols), column_expr(cols)),
            )
        })
    ) {
        let side = |filter: SqlExpr, projection: SqlExpr| {
            SqlQuery::select(SqlSelect::project(vec![projection]).with_filter(filter))
        };
        let q = SqlQuery::Union(Box::new(side(f1, p1)), Box::new(side(f2, p2)));
        assert_all_modes_match_scan(&q, &table)?;
    }
}

/// Translation-driven differential check: every paper operator's SQL form
/// runs identically through all plan modes, and matches the lambda DCS
/// answer where the translation is value-compatible.
#[test]
fn translated_operator_queries_match_scan() {
    let olympics = wtq_table::samples::olympics();
    let wrecks = wtq_table::samples::shipwrecks();
    let squad = wtq_table::samples::squad();
    let cases: Vec<(&str, &Table)> = vec![
        ("City.Athens", &olympics),
        ("R[Year].City.Athens", &olympics),
        ("R[Year].Prev.City.Athens", &olympics),
        ("R[Year].R[Prev].City.Athens", &olympics),
        ("sum(R[Year].City.Athens)", &olympics),
        ("sub(count(City.Athens), count(City.London))", &olympics),
        ("(Country.China or Country.Greece)", &olympics),
        ("(City.London and Country.UK)", &olympics),
        ("argmax(Rows, Year)", &olympics),
        ("R[Year].last(City.Athens)", &olympics),
        ("most_common((Athens or London), City)", &olympics),
        ("compare_max((London or Beijing), Year, City)", &olympics),
        ("most_common(R[Lake].Rows, Lake)", &wrecks),
        ("Games.(> 4)", &squad),
        ("(Games.(>= 5) and Games.(< 17))", &squad),
    ];
    for (text, table) in cases {
        let formula = wtq_dcs::parse_formula(text).expect("parses");
        let Ok(sql) = translate(&formula) else {
            continue;
        };
        let index = TableIndex::new(table);
        let cold = SqlEngine::new(table);
        let warm = SqlEngine::with_index(table, &index);
        let scanned = cold
            .execute(&sql, PlanMode::ForceScan)
            .expect("scan executes");
        for (label, mode, engine) in [
            ("cold Auto", PlanMode::Auto, &cold),
            ("warm Auto", PlanMode::Auto, &warm),
            ("ForceIndex", PlanMode::ForceIndex, &warm),
        ] {
            assert_eq!(
                engine.execute(&sql, mode).expect("planned executes"),
                scanned,
                "{label} divergence on {text}"
            );
        }
    }
}
