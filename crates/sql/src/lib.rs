//! # wtq-sql
//!
//! SQL substrate for the *Explaining Queries over Web Tables to Non-Experts*
//! reproduction (§3.2 "Mapping to SQL" and Table 10).
//!
//! The paper positions lambda DCS as an expressive fragment of SQL by giving
//! a translation for every operator (Table 10). This crate provides:
//!
//! * [`ast`] — a small SQL abstract syntax tree covering exactly the query
//!   shapes the translation produces (single-table `SELECT` with scalar and
//!   `IN` subqueries, aggregates, `UNION`, `GROUP BY … ORDER BY … LIMIT`,
//!   and arithmetic between scalar subqueries), with a pretty-printer,
//! * [`translate`] — the lambda DCS → SQL translation of Table 10,
//! * [`engine`] — an index-backed in-memory executor for that SQL fragment
//!   over a single [`wtq_table::Table`], used to cross-validate the lambda
//!   DCS evaluator: for every operator the translated SQL must return the
//!   same answer as the direct lambda DCS execution. Indexable `WHERE`
//!   clauses are answered from the shared [`wtq_table::TableIndex`];
//!   [`engine::execute_scan`] keeps the pre-index scan path for differential
//!   testing.

pub mod ast;
pub mod engine;
pub mod error;
pub mod translate;

pub use ast::{SqlExpr, SqlOrder, SqlQuery, SqlSelect};
pub use engine::{execute, execute_scan, execute_with_index, SqlResult};
pub use error::SqlError;
pub use translate::translate;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, SqlError>;
