//! # wtq-sql
//!
//! SQL substrate for the *Explaining Queries over Web Tables to Non-Experts*
//! reproduction (§3.2 "Mapping to SQL" and Table 10).
//!
//! The paper positions lambda DCS as an expressive fragment of SQL by giving
//! a translation for every operator (Table 10). This crate provides:
//!
//! * [`ast`] — a small SQL abstract syntax tree covering exactly the query
//!   shapes the translation produces (single-table `SELECT` with scalar and
//!   `IN` subqueries, aggregates, `UNION`, `GROUP BY … ORDER BY … LIMIT`,
//!   and arithmetic between scalar subqueries), with a pretty-printer,
//! * [`translate`] — the lambda DCS → SQL translation of Table 10,
//! * [`engine`] — a cost-based in-memory executor for that SQL fragment
//!   over a single [`wtq_table::Table`], used to cross-validate the lambda
//!   DCS evaluator: for every operator the translated SQL must return the
//!   same answer as the direct lambda DCS execution. An [`SqlEngine`] runs
//!   queries under a [`PlanMode`]: `Auto` picks per predicate between the
//!   shared [`wtq_table::TableIndex`] and the table's columnar kernels by
//!   estimated selectivity (and never builds an index for a single cold
//!   query); `ForceScan` keeps the pre-index scan path as the oracle of the
//!   differential suites; `ForceIndex` pins the indexed path. `Auto`
//!   decisions are counted per engine in [`PlannerCounters`] (snapshotted
//!   as [`PlannerStats`]); the serving layers share one set across their
//!   per-request engines and expose it on their stats endpoints.

pub mod ast;
pub mod engine;
pub mod error;
pub mod stats;
pub mod translate;

pub use ast::{SqlExpr, SqlOrder, SqlQuery, SqlSelect};
pub use engine::{PlanMode, SqlEngine, SqlResult};
pub use error::SqlError;
pub use stats::{PlannerCounters, PlannerStats};
pub use translate::translate;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, SqlError>;
