//! In-memory executor for the SQL fragment of Table 10.
//!
//! The engine runs a [`SqlQuery`] against a single [`Table`] (the implicit
//! `T` of the translation) and returns plain rows of values. Its purpose in
//! this reproduction is cross-validation: for every lambda DCS operator, the
//! translated SQL must compute the same answer as the lambda DCS evaluator,
//! which is exactly how the paper argues its provenance model is aligned with
//! relational provenance work.
//!
//! Execution is **index-backed**: [`execute`] builds (or
//! [`execute_with_index`] borrows) a [`TableIndex`] and
//!
//! * plans indexable `WHERE` clauses (`Column = v`, numeric comparisons
//!   against literals, `IN` lists, and `AND`/`OR` combinations of those)
//!   directly against the inverted / sorted-numeric indexes instead of
//!   evaluating the predicate per row,
//! * resolves column names through the index's O(1) name map instead of a
//!   linear scan per row,
//! * deduplicates `UNION` / `DISTINCT` results with a hashed row-key set
//!   instead of the former O(n²) `Vec::contains`.
//!
//! Both paths additionally memoize **subquery results** within one
//! execution: queries are pure over an immutable table, so a scalar or `IN`
//! subquery evaluated once per outer row (the translation's favourite shape,
//! `WHERE Index IN (SELECT … WHERE C = (SELECT MAX(C) …))`) is executed
//! once instead of O(rows) times, turning the nested-subquery row loop from
//! O(n³) into O(n).
//!
//! [`execute_scan`] runs the same queries with no index (per-row linear
//! column resolution, no planned filters) — the pre-index scan semantics —
//! and is kept as the reference implementation for the differential suite.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;

use wtq_dcs::{compare_records, AggregateOp, CompareOp};
use wtq_table::{RecordIdx, Table, TableIndex, Value};

use crate::ast::{ArithOp, SqlExpr, SqlOrder, SqlQuery, SqlSelect};
use crate::error::SqlError;
use crate::Result;

/// Query output: a list of rows, each a list of values.
pub type SqlResult = Vec<Vec<Value>>;

/// Memoized subquery state, keyed by the subquery node's address (stable for
/// the duration of one `execute` call over the borrowed query AST): the
/// result rows, plus a lazily-built membership set over the first column for
/// `IN (subquery)` tests (turning the per-row needle search from O(result)
/// into O(1)).
#[derive(Default)]
struct SubqueryCache {
    results: RefCell<HashMap<usize, Rc<SqlResult>>>,
    membership: RefCell<HashMap<usize, Rc<HashSet<Value>>>>,
}

/// Execution context: the table, (optionally) its columnar index, and the
/// per-execution subquery cache. With no index the engine degrades to the
/// original full-scan behavior.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    table: &'a Table,
    index: Option<&'a TableIndex>,
    subqueries: &'a SubqueryCache,
}

impl<'a> Ctx<'a> {
    fn column_index(&self, name: &str) -> Option<usize> {
        match self.index {
            Some(index) => index.column_index(name),
            None => self.table.column_index(name),
        }
    }
}

/// Execute a subquery through the per-execution cache. Sound because the
/// table is immutable and queries are pure; errors are not cached (they
/// recur identically on re-evaluation).
fn execute_subquery(query: &SqlQuery, ctx: Ctx<'_>) -> Result<Rc<SqlResult>> {
    let key = query as *const SqlQuery as usize;
    if let Some(rows) = ctx.subqueries.results.borrow().get(&key) {
        return Ok(rows.clone());
    }
    let rows = Rc::new(execute_query(query, ctx)?);
    ctx.subqueries
        .results
        .borrow_mut()
        .insert(key, rows.clone());
    Ok(rows)
}

/// First-column membership set of a subquery's result, memoized per
/// execution. Matches `rows.iter().any(|row| row.first() == Some(&v))` up
/// to `Value`'s documented hash/equality boundary caveat (numeric pairs
/// straddling a rounding-grid edge within the equality tolerance).
fn subquery_membership(query: &SqlQuery, ctx: Ctx<'_>) -> Result<Rc<HashSet<Value>>> {
    let key = query as *const SqlQuery as usize;
    if let Some(set) = ctx.subqueries.membership.borrow().get(&key) {
        return Ok(set.clone());
    }
    let rows = execute_subquery(query, ctx)?;
    let set: Rc<HashSet<Value>> =
        Rc::new(rows.iter().filter_map(|row| row.first()).cloned().collect());
    ctx.subqueries
        .membership
        .borrow_mut()
        .insert(key, set.clone());
    Ok(set)
}

/// Execute `query` against `table`, building the columnar index first. When
/// running many queries over one table, build the index once and use
/// [`execute_with_index`].
pub fn execute(query: &SqlQuery, table: &Table) -> Result<SqlResult> {
    let index = TableIndex::new(table);
    execute_with_index(query, table, &index)
}

/// Execute `query` against `table` using an already-built index of the same
/// table (no per-call index build).
pub fn execute_with_index(
    query: &SqlQuery,
    table: &Table,
    index: &TableIndex,
) -> Result<SqlResult> {
    let subqueries = SubqueryCache::default();
    execute_query(
        query,
        Ctx {
            table,
            index: Some(index),
            subqueries: &subqueries,
        },
    )
}

/// Execute `query` with the pre-index scan semantics (no index, per-row
/// linear column resolution, unplanned filters; semantics identical). Kept
/// as the reference path for differential testing and benchmarks.
pub fn execute_scan(query: &SqlQuery, table: &Table) -> Result<SqlResult> {
    let subqueries = SubqueryCache::default();
    execute_query(
        query,
        Ctx {
            table,
            index: None,
            subqueries: &subqueries,
        },
    )
}

fn execute_query(query: &SqlQuery, ctx: Ctx<'_>) -> Result<SqlResult> {
    match query {
        SqlQuery::Select(select) => execute_select(select, ctx),
        SqlQuery::Union(left, right) => {
            // SQL UNION deduplicates across the whole result set; the hashed
            // row-key set keeps first occurrences in order.
            let mut rows: SqlResult = Vec::new();
            let mut seen: HashSet<Vec<Value>> = HashSet::new();
            for row in execute_query(left, ctx)?
                .into_iter()
                .chain(execute_query(right, ctx)?)
            {
                if seen.insert(row.clone()) {
                    rows.push(row);
                }
            }
            Ok(rows)
        }
        SqlQuery::ScalarDifference(left, right) => {
            let left = scalar_number(&execute_query(left, ctx)?)?;
            let right = scalar_number(&execute_query(right, ctx)?)?;
            Ok(vec![vec![Value::Num(left - right)]])
        }
    }
}

/// Extract the single numeric value of a scalar result.
fn scalar_number(result: &SqlResult) -> Result<f64> {
    if result.len() != 1 || result[0].len() != 1 {
        return Err(SqlError::ScalarCardinality(result.len()));
    }
    result[0][0]
        .as_number()
        .ok_or_else(|| SqlError::Type(format!("expected a number, found {}", result[0][0])))
}

/// A value produced while evaluating an expression: either a table value or
/// a boolean (from predicates).
#[derive(Debug, Clone, PartialEq)]
enum EvalValue {
    Val(Value),
    Bool(bool),
    Null,
}

impl EvalValue {
    fn truthy(&self) -> bool {
        matches!(self, EvalValue::Bool(true))
    }

    fn as_value(&self) -> Result<Value> {
        match self {
            EvalValue::Val(v) => Ok(v.clone()),
            EvalValue::Bool(b) => Ok(Value::Num(if *b { 1.0 } else { 0.0 })),
            EvalValue::Null => Err(SqlError::Type("NULL used as a value".into())),
        }
    }

    fn as_number(&self) -> Result<f64> {
        match self {
            EvalValue::Val(v) => v
                .as_number()
                .ok_or_else(|| SqlError::Type(format!("expected a number, found {v}"))),
            EvalValue::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            EvalValue::Null => Err(SqlError::Type("NULL used as a number".into())),
        }
    }
}

/// Swap a comparison's operand order: `lit op cell` ⇔ `cell (swap op) lit`.
fn swap_compare(op: CompareOp) -> CompareOp {
    match op {
        CompareOp::Lt => CompareOp::Gt,
        CompareOp::Leq => CompareOp::Geq,
        CompareOp::Gt => CompareOp::Lt,
        CompareOp::Geq => CompareOp::Leq,
        CompareOp::Neq => CompareOp::Neq,
    }
}

/// Plan an indexable `WHERE` clause: returns the matching records (ascending)
/// when the predicate is a combination of per-column value / range / scalar
/// subquery tests the index can answer, `None` when the engine must fall
/// back to a row scan.
///
/// Planned predicates either cannot error per row (all referenced columns
/// exist, literals only) or error identically to the first row's evaluation
/// (scalar subqueries; the planner is only consulted for non-empty tables),
/// so taking the fast path never changes observable behavior.
fn index_filter(
    expr: &SqlExpr,
    ctx: Ctx<'_>,
    index: &TableIndex,
) -> Option<Result<Vec<RecordIdx>>> {
    match expr {
        SqlExpr::Equals(a, b) => {
            if let Some((column, literal)) = column_literal(a, b) {
                let column = index.column_index(column)?;
                return Some(Ok(index.records_with_value(column, literal).to_vec()));
            }
            // Column = (scalar subquery): evaluate the subquery once, then a
            // point lookup. The per-row path evaluates the same subquery for
            // every record, erroring on the first row if it is not 1×1 —
            // matched here by erroring before any row is produced.
            let (column, query) = match (a.as_ref(), b.as_ref()) {
                (SqlExpr::Column(name), SqlExpr::Scalar(query))
                | (SqlExpr::Scalar(query), SqlExpr::Column(name)) => (name, query),
                _ => return None,
            };
            let column = index.column_index(column)?;
            let rows = match execute_subquery(query, ctx) {
                Ok(rows) => rows,
                Err(error) => return Some(Err(error)),
            };
            if rows.len() != 1 || rows[0].len() != 1 {
                return Some(Err(SqlError::ScalarCardinality(rows.len())));
            }
            Some(Ok(index.records_with_value(column, &rows[0][0]).to_vec()))
        }
        SqlExpr::Compare(op, a, b) => {
            let (column, literal, op) = match (a.as_ref(), b.as_ref()) {
                (SqlExpr::Column(name), SqlExpr::Literal(value)) => (name, value, *op),
                (SqlExpr::Literal(value), SqlExpr::Column(name)) => {
                    (name, value, swap_compare(*op))
                }
                _ => return None,
            };
            let column = index.column_index(column)?;
            // A non-numeric literal compares false against every row.
            let Some(threshold) = literal.as_number() else {
                return Some(Ok(Vec::new()));
            };
            Some(Ok(compare_records(index, column, op, threshold)
                .into_iter()
                .collect()))
        }
        SqlExpr::InList(inner, values) => {
            let SqlExpr::Column(name) = inner.as_ref() else {
                return None;
            };
            let column = index.column_index(name)?;
            let mut records: Vec<RecordIdx> = values
                .iter()
                .flat_map(|value| index.records_with_value(column, value).iter().copied())
                .collect();
            records.sort_unstable();
            records.dedup();
            Some(Ok(records))
        }
        SqlExpr::And(a, b) => {
            let left = match index_filter(a, ctx, index)? {
                Ok(records) => records,
                Err(error) => return Some(Err(error)),
            };
            if left.is_empty() {
                // Mirror the row loop's `&&` short-circuit: with no row
                // passing the left side, the right side is never evaluated
                // (and so cannot error).
                return Some(Ok(left));
            }
            let right = match index_filter(b, ctx, index)? {
                Ok(records) => records,
                Err(error) => return Some(Err(error)),
            };
            let right: HashSet<RecordIdx> = right.into_iter().collect();
            Some(Ok(left.into_iter().filter(|r| right.contains(r)).collect()))
        }
        SqlExpr::Or(a, b) => {
            let left = match index_filter(a, ctx, index)? {
                Ok(records) => records,
                Err(error) => return Some(Err(error)),
            };
            if left.len() == ctx.table.num_records() {
                // Mirror the row loop's `||` short-circuit: every row passes
                // the left side, so the right side is never evaluated.
                return Some(Ok(left));
            }
            let right = match index_filter(b, ctx, index)? {
                Ok(records) => records,
                Err(error) => return Some(Err(error)),
            };
            let mut merged: Vec<RecordIdx> = left.into_iter().chain(right).collect();
            merged.sort_unstable();
            merged.dedup();
            Some(Ok(merged))
        }
        _ => None,
    }
}

/// The `(column, literal)` operands of a symmetric predicate, if that is
/// what the two sides are.
fn column_literal<'e>(a: &'e SqlExpr, b: &'e SqlExpr) -> Option<(&'e str, &'e Value)> {
    match (a, b) {
        (SqlExpr::Column(name), SqlExpr::Literal(value))
        | (SqlExpr::Literal(value), SqlExpr::Column(name)) => Some((name, value)),
        _ => None,
    }
}

fn execute_select(select: &SqlSelect, ctx: Ctx<'_>) -> Result<SqlResult> {
    // 1. Filter — through the index planner when possible, else a row scan.
    // The planner is skipped for empty tables: the row loop never runs
    // there, so nothing (not even an erroring scalar subquery) may execute.
    let matching: Vec<RecordIdx> = match &select.filter {
        None => ctx.table.record_indices().collect(),
        Some(filter) => {
            let planned = match ctx.index {
                Some(index) if !ctx.table.is_empty() => index_filter(filter, ctx, index),
                _ => None,
            };
            match planned {
                Some(records) => records?,
                None => {
                    let mut matching = Vec::new();
                    for record in ctx.table.record_indices() {
                        if eval_row(filter, ctx, record)?.truthy() {
                            matching.push(record);
                        }
                    }
                    matching
                }
            }
        }
    };

    // 2. Group / aggregate / project, collecting (sort_key, row) pairs.
    let mut rows: Vec<(Option<Value>, Vec<Value>)> = Vec::new();
    if let Some(group_expr) = &select.group_by {
        let mut groups: BTreeMap<Value, Vec<RecordIdx>> = BTreeMap::new();
        for &record in &matching {
            let key = eval_row(group_expr, ctx, record)?.as_value()?;
            groups.entry(key).or_default().push(record);
        }
        for (_key, records) in groups {
            let row = project_aggregate(&select.projection, ctx, &records)?;
            let sort_key = match &select.order_by {
                Some((expr, _)) => Some(eval_aggregate_expr(expr, ctx, &records)?.as_value()?),
                None => None,
            };
            rows.push((sort_key, row));
        }
    } else if projection_has_aggregate(&select.projection) {
        let row = project_aggregate(&select.projection, ctx, &matching)?;
        rows.push((None, row));
    } else {
        for &record in &matching {
            let row = if select.projection.is_empty() {
                ctx.table
                    .record(record)
                    .map_err(|_| SqlError::Type("record out of range".into()))?
                    .to_vec()
            } else {
                select
                    .projection
                    .iter()
                    .map(|expr| eval_row(expr, ctx, record).and_then(|v| v.as_value()))
                    .collect::<Result<Vec<Value>>>()?
            };
            let sort_key = match &select.order_by {
                Some((expr, _)) => Some(eval_row(expr, ctx, record)?.as_value()?),
                None => None,
            };
            rows.push((sort_key, row));
        }
    }

    // 3. Order.
    if let Some((_, order)) = &select.order_by {
        rows.sort_by(|a, b| {
            let cmp = a.0.cmp(&b.0);
            match order {
                SqlOrder::Asc => cmp,
                SqlOrder::Desc => cmp.reverse(),
            }
        });
    }

    // 4. Distinct (hashed row-key set, first occurrence wins) and limit.
    let mut out: SqlResult = Vec::new();
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    for (_, row) in rows {
        if select.distinct && !seen.insert(row.clone()) {
            continue;
        }
        out.push(row);
        if let Some(limit) = select.limit {
            if out.len() >= limit {
                break;
            }
        }
    }
    Ok(out)
}

fn projection_has_aggregate(projection: &[SqlExpr]) -> bool {
    projection.iter().any(contains_aggregate)
}

fn contains_aggregate(expr: &SqlExpr) -> bool {
    match expr {
        SqlExpr::Aggregate(_, _) => true,
        SqlExpr::Equals(a, b)
        | SqlExpr::Compare(_, a, b)
        | SqlExpr::Arith(_, a, b)
        | SqlExpr::And(a, b)
        | SqlExpr::Or(a, b) => contains_aggregate(a) || contains_aggregate(b),
        SqlExpr::InSubquery(a, _) | SqlExpr::InList(a, _) => contains_aggregate(a),
        SqlExpr::Column(_) | SqlExpr::Index | SqlExpr::Literal(_) | SqlExpr::Scalar(_) => false,
    }
}

fn project_aggregate(
    projection: &[SqlExpr],
    ctx: Ctx<'_>,
    records: &[RecordIdx],
) -> Result<Vec<Value>> {
    projection
        .iter()
        .map(|expr| eval_aggregate_expr(expr, ctx, records).and_then(|v| v.as_value()))
        .collect()
}

/// Evaluate an expression in aggregate context: aggregates range over
/// `records`, other sub-expressions are evaluated on the first record of the
/// group (they are group keys in every query the translation produces).
fn eval_aggregate_expr(expr: &SqlExpr, ctx: Ctx<'_>, records: &[RecordIdx]) -> Result<EvalValue> {
    match expr {
        SqlExpr::Aggregate(op, inner) => {
            if *op == AggregateOp::Count {
                return Ok(EvalValue::Val(Value::Num(records.len() as f64)));
            }
            let mut numbers = Vec::with_capacity(records.len());
            for &record in records {
                let value = eval_row(inner, ctx, record)?;
                numbers.push(value.as_number()?);
            }
            if numbers.is_empty() {
                return Ok(EvalValue::Null);
            }
            let result = match op {
                AggregateOp::Max => numbers.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                AggregateOp::Min => numbers.iter().copied().fold(f64::INFINITY, f64::min),
                AggregateOp::Sum => numbers.iter().sum(),
                AggregateOp::Avg => numbers.iter().sum::<f64>() / numbers.len() as f64,
                AggregateOp::Count => unreachable!("count handled above"),
            };
            Ok(EvalValue::Val(Value::Num(result)))
        }
        SqlExpr::Arith(op, left, right) => {
            let left = eval_aggregate_expr(left, ctx, records)?.as_number()?;
            let right = eval_aggregate_expr(right, ctx, records)?.as_number()?;
            let value = match op {
                ArithOp::Add => left + right,
                ArithOp::Sub => left - right,
            };
            Ok(EvalValue::Val(Value::Num(value)))
        }
        other => match records.first() {
            Some(&record) => eval_row(other, ctx, record),
            None => Ok(EvalValue::Null),
        },
    }
}

/// Evaluate an expression against a single record.
fn eval_row(expr: &SqlExpr, ctx: Ctx<'_>, record: RecordIdx) -> Result<EvalValue> {
    match expr {
        SqlExpr::Column(name) => {
            let column = ctx
                .column_index(name)
                .ok_or_else(|| SqlError::UnknownColumn(name.clone()))?;
            Ok(ctx
                .table
                .value_at(record, column)
                .map(|v| EvalValue::Val(v.clone()))
                .unwrap_or(EvalValue::Null))
        }
        SqlExpr::Index => Ok(EvalValue::Val(Value::Num(record as f64))),
        SqlExpr::Literal(value) => Ok(EvalValue::Val(value.clone())),
        SqlExpr::Aggregate(_, _) => Err(SqlError::Type(
            "aggregate used outside a projection or ORDER BY context".into(),
        )),
        SqlExpr::Equals(left, right) => {
            let left = eval_row(left, ctx, record)?;
            let right = eval_row(right, ctx, record)?;
            match (left, right) {
                (EvalValue::Null, _) | (_, EvalValue::Null) => Ok(EvalValue::Bool(false)),
                (l, r) => Ok(EvalValue::Bool(l.as_value()? == r.as_value()?)),
            }
        }
        SqlExpr::Compare(op, left, right) => {
            let left = eval_row(left, ctx, record)?;
            let right = eval_row(right, ctx, record)?;
            match (left, right) {
                (EvalValue::Null, _) | (_, EvalValue::Null) => Ok(EvalValue::Bool(false)),
                (l, r) => match (l.as_value()?.as_number(), r.as_value()?.as_number()) {
                    (Some(a), Some(b)) => Ok(EvalValue::Bool(op.compare(a, b))),
                    _ => Ok(EvalValue::Bool(false)),
                },
            }
        }
        SqlExpr::InSubquery(inner, query) => {
            let needle = eval_row(inner, ctx, record)?;
            let EvalValue::Val(needle) = needle else {
                return Ok(EvalValue::Bool(false));
            };
            let members = subquery_membership(query, ctx)?;
            Ok(EvalValue::Bool(members.contains(&needle)))
        }
        SqlExpr::InList(inner, values) => {
            let needle = eval_row(inner, ctx, record)?;
            let EvalValue::Val(needle) = needle else {
                return Ok(EvalValue::Bool(false));
            };
            Ok(EvalValue::Bool(values.contains(&needle)))
        }
        SqlExpr::Scalar(query) => {
            let rows = execute_subquery(query, ctx)?;
            if rows.len() != 1 || rows[0].len() != 1 {
                return Err(SqlError::ScalarCardinality(rows.len()));
            }
            Ok(EvalValue::Val(rows[0][0].clone()))
        }
        SqlExpr::Arith(op, left, right) => {
            let left = eval_row(left, ctx, record)?.as_number()?;
            let right = eval_row(right, ctx, record)?.as_number()?;
            let value = match op {
                ArithOp::Add => left + right,
                ArithOp::Sub => left - right,
            };
            Ok(EvalValue::Val(Value::Num(value)))
        }
        SqlExpr::And(left, right) => Ok(EvalValue::Bool(
            eval_row(left, ctx, record)?.truthy() && eval_row(right, ctx, record)?.truthy(),
        )),
        SqlExpr::Or(left, right) => Ok(EvalValue::Bool(
            eval_row(left, ctx, record)?.truthy() || eval_row(right, ctx, record)?.truthy(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{SqlExpr, SqlOrder, SqlQuery, SqlSelect};
    use wtq_dcs::CompareOp;
    use wtq_table::samples;

    fn col(name: &str) -> SqlExpr {
        SqlExpr::Column(name.to_string())
    }

    fn lit(value: Value) -> SqlExpr {
        SqlExpr::Literal(value)
    }

    #[test]
    fn select_star_with_filter() {
        // SELECT * FROM T WHERE Country = 'Greece'
        let table = samples::olympics();
        let q = SqlQuery::select(SqlSelect::project(vec![]).with_filter(SqlExpr::Equals(
            Box::new(col("Country")),
            Box::new(lit(Value::str("Greece"))),
        )));
        let rows = execute(&q, &table).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][2], Value::str("Athens"));
    }

    #[test]
    fn example_3_2_city_of_minimum_year() {
        let table = samples::olympics();
        let min_year = SqlQuery::select(SqlSelect::project(vec![SqlExpr::Aggregate(
            AggregateOp::Min,
            Box::new(col("Year")),
        )]));
        let inner = SqlQuery::select(SqlSelect::project(vec![SqlExpr::Index]).with_filter(
            SqlExpr::Equals(
                Box::new(col("Year")),
                Box::new(SqlExpr::Scalar(Box::new(min_year))),
            ),
        ));
        let outer = SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
            SqlExpr::InSubquery(Box::new(SqlExpr::Index), Box::new(inner)),
        ));
        assert_eq!(
            execute(&outer, &table).unwrap(),
            vec![vec![Value::str("Athens")]]
        );
    }

    #[test]
    fn aggregate_projection_produces_one_row() {
        let table = samples::medals();
        let q = SqlQuery::select(SqlSelect::project(vec![SqlExpr::Aggregate(
            AggregateOp::Sum,
            Box::new(col("Gold")),
        )]));
        assert_eq!(execute(&q, &table).unwrap(), vec![vec![Value::num(298.0)]]);
    }

    #[test]
    fn count_of_filtered_rows() {
        let table = samples::olympics();
        let q = SqlQuery::select(
            SqlSelect::project(vec![SqlExpr::Aggregate(
                AggregateOp::Count,
                Box::new(SqlExpr::Index),
            )])
            .with_filter(SqlExpr::Equals(
                Box::new(col("City")),
                Box::new(lit(Value::str("Athens"))),
            )),
        );
        assert_eq!(execute(&q, &table).unwrap(), vec![vec![Value::num(2.0)]]);
    }

    #[test]
    fn comparison_and_conjunction() {
        let table = samples::squad();
        let q = SqlQuery::select(
            SqlSelect::project(vec![col("Name")]).with_filter(SqlExpr::And(
                Box::new(SqlExpr::Compare(
                    CompareOp::Gt,
                    Box::new(col("Games")),
                    Box::new(lit(Value::num(4.0))),
                )),
                Box::new(SqlExpr::Equals(
                    Box::new(col("Position")),
                    Box::new(lit(Value::str("MF"))),
                )),
            )),
        );
        let rows = execute(&q, &table).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn group_by_order_by_count_limit() {
        // SELECT Lake FROM T GROUP BY Lake ORDER BY COUNT(Index) DESC LIMIT 1
        let table = samples::shipwrecks();
        let select = SqlSelect {
            projection: vec![col("Lake")],
            distinct: false,
            filter: None,
            group_by: Some(col("Lake")),
            order_by: Some((
                SqlExpr::Aggregate(AggregateOp::Count, Box::new(SqlExpr::Index)),
                SqlOrder::Desc,
            )),
            limit: Some(1),
        };
        assert_eq!(
            execute(&SqlQuery::Select(select), &table).unwrap(),
            vec![vec![Value::str("Lake Huron")]]
        );
    }

    #[test]
    fn scalar_difference() {
        let table = samples::shipwrecks();
        let count_of = |lake: &str| {
            SqlQuery::select(
                SqlSelect::project(vec![SqlExpr::Aggregate(
                    AggregateOp::Count,
                    Box::new(SqlExpr::Index),
                )])
                .with_filter(SqlExpr::Equals(
                    Box::new(col("Lake")),
                    Box::new(lit(Value::str(lake))),
                )),
            )
        };
        let q = SqlQuery::ScalarDifference(
            Box::new(count_of("Lake Huron")),
            Box::new(count_of("Lake Erie")),
        );
        assert_eq!(execute(&q, &table).unwrap(), vec![vec![Value::num(3.0)]]);
    }

    #[test]
    fn union_deduplicates() {
        let table = samples::olympics();
        let cities =
            |country: &str| {
                SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
                    SqlExpr::Equals(Box::new(col("Country")), Box::new(lit(Value::str(country)))),
                ))
            };
        let q = SqlQuery::Union(Box::new(cities("Greece")), Box::new(cities("Greece")));
        let rows = execute(&q, &table).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::str("Athens"));
    }

    #[test]
    fn distinct_and_in_list() {
        let table = samples::olympics();
        let select = SqlSelect {
            projection: vec![col("Country")],
            distinct: true,
            filter: Some(SqlExpr::InList(
                Box::new(col("City")),
                vec![Value::str("Athens"), Value::str("London")],
            )),
            group_by: None,
            order_by: None,
            limit: None,
        };
        let rows = execute(&SqlQuery::Select(select), &table).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn errors_are_reported() {
        let table = samples::olympics();
        let q = SqlQuery::select(SqlSelect::project(vec![col("Continent")]));
        assert!(matches!(
            execute(&q, &table),
            Err(SqlError::UnknownColumn(_))
        ));

        // Scalar subquery with several rows.
        let many = SqlQuery::select(SqlSelect::project(vec![col("City")]));
        let q = SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
            SqlExpr::Equals(
                Box::new(col("City")),
                Box::new(SqlExpr::Scalar(Box::new(many))),
            ),
        ));
        assert!(matches!(
            execute(&q, &table),
            Err(SqlError::ScalarCardinality(_))
        ));
    }

    #[test]
    fn index_arithmetic_shifts_rows() {
        // SELECT City FROM T WHERE Index IN (SELECT Index - 1 FROM T WHERE City = 'London')
        let table = samples::olympics();
        let inner = SqlQuery::select(
            SqlSelect::project(vec![SqlExpr::Arith(
                ArithOp::Sub,
                Box::new(SqlExpr::Index),
                Box::new(lit(Value::num(1.0))),
            )])
            .with_filter(SqlExpr::Equals(
                Box::new(col("City")),
                Box::new(lit(Value::str("London"))),
            )),
        );
        let outer = SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
            SqlExpr::InSubquery(Box::new(SqlExpr::Index), Box::new(inner)),
        ));
        let rows = execute(&outer, &table).unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::str("St. Louis")], vec![Value::str("Beijing")]]
        );
    }

    #[test]
    fn indexed_and_scan_paths_agree_on_planned_filters() {
        let table = samples::squad();
        // An AND/OR combination the planner handles entirely from the index.
        let filter = SqlExpr::Or(
            Box::new(SqlExpr::And(
                Box::new(SqlExpr::Compare(
                    CompareOp::Geq,
                    Box::new(col("Games")),
                    Box::new(lit(Value::num(5.0))),
                )),
                Box::new(SqlExpr::Equals(
                    Box::new(col("Position")),
                    Box::new(lit(Value::str("DF"))),
                )),
            )),
            Box::new(SqlExpr::InList(
                Box::new(col("Name")),
                vec![Value::str("Lucien Favre")],
            )),
        );
        let q = SqlQuery::select(SqlSelect::project(vec![col("Name")]).with_filter(filter));
        assert_eq!(
            execute(&q, &table).unwrap(),
            execute_scan(&q, &table).unwrap()
        );

        // A literal-on-the-left comparison takes the swapped-operator path.
        let q = SqlQuery::select(SqlSelect::project(vec![col("Name")]).with_filter(
            SqlExpr::Compare(
                CompareOp::Lt,
                Box::new(lit(Value::num(4.0))),
                Box::new(col("Games")),
            ),
        ));
        let rows = execute(&q, &table).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows, execute_scan(&q, &table).unwrap());
    }

    #[test]
    fn unknown_filter_column_still_errors_lazily() {
        // The planner must not turn a per-row error into an eager one or
        // swallow it: an unknown column inside WHERE falls back to the scan
        // path and errors exactly as before.
        let table = samples::olympics();
        let q = SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
            SqlExpr::Equals(Box::new(col("Continent")), Box::new(lit(Value::str("X")))),
        ));
        assert!(matches!(
            execute(&q, &table),
            Err(SqlError::UnknownColumn(_))
        ));
    }

    #[test]
    fn scalar_subquery_filter_is_planned_and_agrees_with_scan() {
        // SELECT City FROM T WHERE Year = (SELECT MAX(Year) FROM T)
        let table = samples::olympics();
        let max_year = SqlQuery::select(SqlSelect::project(vec![SqlExpr::Aggregate(
            AggregateOp::Max,
            Box::new(col("Year")),
        )]));
        let q = SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
            SqlExpr::Equals(
                Box::new(col("Year")),
                Box::new(SqlExpr::Scalar(Box::new(max_year))),
            ),
        ));
        let rows = execute(&q, &table).unwrap();
        assert_eq!(rows, execute_scan(&q, &table).unwrap());
        assert_eq!(rows, vec![vec![Value::str("Rio de Janeiro")]]);
    }

    #[test]
    fn planner_preserves_boolean_short_circuits() {
        let table = samples::olympics();
        let many = SqlQuery::select(SqlSelect::project(vec![col("City")]));
        let erroring = SqlExpr::Equals(
            Box::new(col("City")),
            Box::new(SqlExpr::Scalar(Box::new(many))),
        );
        // Left side matches nothing → the erroring right side must never run.
        let q = SqlQuery::select(
            SqlSelect::project(vec![col("City")]).with_filter(SqlExpr::And(
                Box::new(SqlExpr::Equals(
                    Box::new(col("Country")),
                    Box::new(lit(Value::str("Atlantis"))),
                )),
                Box::new(erroring.clone()),
            )),
        );
        assert_eq!(
            execute(&q, &table).unwrap(),
            execute_scan(&q, &table).unwrap()
        );
        assert!(execute(&q, &table).unwrap().is_empty());
        // Left side matches everything → same for OR.
        let q = SqlQuery::select(
            SqlSelect::project(vec![col("City")]).with_filter(SqlExpr::Or(
                Box::new(SqlExpr::Compare(
                    CompareOp::Geq,
                    Box::new(col("Year")),
                    Box::new(lit(Value::num(0.0))),
                )),
                Box::new(erroring),
            )),
        );
        assert_eq!(
            execute(&q, &table).unwrap(),
            execute_scan(&q, &table).unwrap()
        );
        assert_eq!(execute(&q, &table).unwrap().len(), table.num_records());
    }

    #[test]
    fn execute_with_index_reuses_one_build() {
        let table = samples::olympics();
        let index = TableIndex::new(&table);
        let q = SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
            SqlExpr::Equals(
                Box::new(col("Country")),
                Box::new(lit(Value::str("Greece"))),
            ),
        ));
        assert_eq!(
            execute_with_index(&q, &table, &index).unwrap(),
            execute(&q, &table).unwrap()
        );
    }
}
