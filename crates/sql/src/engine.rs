//! In-memory executor for the SQL fragment of Table 10.
//!
//! The engine runs a [`SqlQuery`] against a single [`Table`] (the implicit
//! `T` of the translation) and returns plain rows of values. Its purpose in
//! this reproduction is cross-validation: for every lambda DCS operator, the
//! translated SQL must compute the same answer as the lambda DCS evaluator,
//! which is exactly how the paper argues its provenance model is aligned with
//! relational provenance work.
//!
//! # Execution modes
//!
//! [`SqlEngine`] binds a table (and optionally a pre-built [`TableIndex`])
//! and executes queries under one of three [`PlanMode`]s:
//!
//! * [`PlanMode::ForceScan`] — the pre-index reference semantics: per-row
//!   linear column resolution, the predicate interpreted on every row, no
//!   typed kernels. Kept byte-for-byte boring as the oracle of the
//!   differential suites.
//! * [`PlanMode::ForceIndex`] — always answer plannable `WHERE` clauses from
//!   the inverted / sorted-numeric index, building it on first use if the
//!   engine was not given one.
//! * [`PlanMode::Auto`] — cost-based. Plannable clauses (`Column = v`,
//!   numeric comparisons against literals, `IN` lists, scalar-subquery
//!   equalities, `Index IN (subquery)` record-membership tests, and
//!   `AND`/`OR` combinations of those) run as either an index lookup or a
//!   **columnar kernel** sweep over the table's typed column vectors
//!   ([`Table::filter_eq`] and friends); everything else falls back to the
//!   row scan.
//!
//! # Cost model
//!
//! The planner's cost inputs are the table size and, when an index is
//! already warm, its bucket sizes (a free histogram):
//!
//! * **Cold** (no index built yet): a kernel sweep is `O(rows)` over a
//!   typed vector, an interpreted scan is `O(rows)` with per-row `Value`
//!   dispatch, and an index *build* is `Ω(cells · log rows)` — strictly more
//!   than either. A single query therefore never builds an index: Auto runs
//!   the kernels and can never lose to the scan.
//! * **Warm** (index present): a point lookup returns a precomputed bucket
//!   in `O(matches)`, which beats any sweep for selective predicates. For
//!   dense predicates (estimated matches ≥ half the table) the planner
//!   prefers the kernel sweep: range lookups materialize through a
//!   `BTreeSet` (`O(matches · log matches)`), so at high selectivity the
//!   flat `O(rows)` sweep wins and is already sorted.
//!
//! Estimated selectivity comes from the index buckets (`=`, `IN`), the
//! sorted-numeric partitions (comparisons), and the mean bucket size
//! (scalar subqueries); `AND` takes the min, `OR` the capped sum. Every
//! Auto decision is counted in the engine's own [`PlannerCounters`] set,
//! together with estimated vs actual matching rows.
//!
//! All modes memoize **subquery results** within one execution: queries are
//! pure over an immutable table, so a scalar or `IN` subquery evaluated once
//! per outer row (the translation's favourite shape, `WHERE Index IN
//! (SELECT … WHERE C = (SELECT MAX(C) …))`) is executed once instead of
//! O(rows) times, turning the nested-subquery row loop from O(n³) into O(n).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;
use std::sync::{Arc, OnceLock};

use wtq_dcs::{compare_records, AggregateOp, CompareOp};
use wtq_table::{RecordIdx, Table, TableIndex, Value};

use crate::ast::{ArithOp, SqlExpr, SqlOrder, SqlQuery, SqlSelect};
use crate::error::SqlError;
use crate::stats::{PlannerCounters, PlannerStats};
use crate::Result;

/// Query output: a list of rows, each a list of values.
pub type SqlResult = Vec<Vec<Value>>;

/// How [`SqlEngine::execute`] plans `WHERE` clauses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlanMode {
    /// Cost-based: columnar kernels when cold, index-vs-kernel by estimated
    /// selectivity when an index is warm. Never builds an index. Records
    /// its decisions in the engine's [`PlannerCounters`].
    #[default]
    Auto,
    /// The pre-index reference semantics (per-row interpreted scan, linear
    /// column resolution). The differential oracle.
    ForceScan,
    /// Always answer plannable filters from the [`TableIndex`], building it
    /// lazily if the engine was not constructed with one.
    ForceIndex,
}

/// A query executor bound to one table, owning the lazily-built index that
/// [`PlanMode::ForceIndex`] may require. Construct once per table (or per
/// request) and run any number of queries through [`SqlEngine::execute`].
#[derive(Debug)]
pub struct SqlEngine<'a> {
    table: &'a Table,
    /// An index supplied by the caller (e.g. the serving layer's shared
    /// cache); preferred over `built` whenever present.
    shared: Option<&'a TableIndex>,
    /// Index built on demand by `ForceIndex`. `Auto` only ever *reads* this
    /// — a warm engine stays warm, a cold one never pays the build.
    built: OnceLock<TableIndex>,
    /// This engine's planner decision counters. Fresh per engine by
    /// default; a long-lived owner (the serving layer) can share one set
    /// across its per-request engines via [`SqlEngine::with_counters`].
    counters: Arc<PlannerCounters>,
}

impl<'a> SqlEngine<'a> {
    /// An engine with no pre-built index: `Auto` plans cold (kernels only),
    /// `ForceIndex` builds on first use.
    pub fn new(table: &'a Table) -> Self {
        SqlEngine {
            table,
            shared: None,
            built: OnceLock::new(),
            counters: Arc::new(PlannerCounters::new()),
        }
    }

    /// An engine borrowing an already-built index of the same table (no
    /// per-call build; `Auto` plans warm).
    pub fn with_index(table: &'a Table, index: &'a TableIndex) -> Self {
        SqlEngine {
            table,
            shared: Some(index),
            built: OnceLock::new(),
            counters: Arc::new(PlannerCounters::new()),
        }
    }

    /// Record planner decisions into `counters` instead of this engine's
    /// own fresh set — how a long-lived owner accumulates across the
    /// short-lived per-request engines it constructs.
    pub fn with_counters(mut self, counters: Arc<PlannerCounters>) -> Self {
        self.counters = counters;
        self
    }

    /// The bound table.
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// Snapshot this engine's planner decision counters (unaffected by any
    /// other engine in the process).
    pub fn planner_stats(&self) -> PlannerStats {
        self.counters.snapshot()
    }

    /// Execute `query` under `mode`. All modes compute identical results on
    /// identical inputs — only the physical plan differs.
    pub fn execute(&self, query: &SqlQuery, mode: PlanMode) -> Result<SqlResult> {
        let subqueries = SubqueryCache::default();
        let ctx = match mode {
            PlanMode::Auto => Ctx {
                table: self.table,
                index: self.warm_index(),
                kernels: true,
                observe: Some(&self.counters),
                subqueries: &subqueries,
            },
            PlanMode::ForceScan => Ctx {
                table: self.table,
                index: None,
                kernels: false,
                observe: None,
                subqueries: &subqueries,
            },
            PlanMode::ForceIndex => Ctx {
                table: self.table,
                index: Some(self.force_index()),
                kernels: false,
                observe: None,
                subqueries: &subqueries,
            },
        };
        execute_query(query, ctx)
    }

    /// The index if one is already available — never triggers a build.
    fn warm_index(&self) -> Option<&TableIndex> {
        self.shared.or_else(|| self.built.get())
    }

    /// The index, building (once) if the caller supplied none.
    fn force_index(&self) -> &TableIndex {
        self.shared
            .unwrap_or_else(|| self.built.get_or_init(|| TableIndex::new(self.table)))
    }
}

/// Memoized subquery state, keyed by the subquery node's address (stable for
/// the duration of one `execute` call over the borrowed query AST): the
/// result rows, plus a lazily-built membership set over the first column for
/// `IN (subquery)` tests (turning the per-row needle search from O(result)
/// into O(1)).
#[derive(Default)]
struct SubqueryCache {
    results: RefCell<HashMap<usize, Rc<SqlResult>>>,
    membership: RefCell<HashMap<usize, Rc<HashSet<Value>>>>,
}

/// Execution context threaded through one `execute` call: the table, the
/// warm index (if any), whether columnar kernels may run, whether planner
/// decisions are recorded, and the per-execution subquery cache.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    table: &'a Table,
    index: Option<&'a TableIndex>,
    /// Columnar kernels allowed (Auto). `ForceScan`/`ForceIndex` keep the
    /// historical physical plans exactly.
    kernels: bool,
    /// The engine's planner counters to record decisions into (Auto only;
    /// each record also bumps the deprecated process-wide shim).
    observe: Option<&'a PlannerCounters>,
    subqueries: &'a SubqueryCache,
}

impl<'a> Ctx<'a> {
    fn column_index(&self, name: &str) -> Option<usize> {
        match self.index {
            Some(index) => index.column_index(name),
            None => self.table.column_index(name),
        }
    }
}

/// Execute a subquery through the per-execution cache. Sound because the
/// table is immutable and queries are pure; errors are not cached (they
/// recur identically on re-evaluation).
fn execute_subquery(query: &SqlQuery, ctx: Ctx<'_>) -> Result<Rc<SqlResult>> {
    let key = query as *const SqlQuery as usize;
    if let Some(rows) = ctx.subqueries.results.borrow().get(&key) {
        return Ok(rows.clone());
    }
    let rows = Rc::new(execute_query(query, ctx)?);
    ctx.subqueries
        .results
        .borrow_mut()
        .insert(key, rows.clone());
    Ok(rows)
}

/// First-column membership set of a subquery's result, memoized per
/// execution. Matches `rows.iter().any(|row| row.first() == Some(&v))` up
/// to `Value`'s documented hash/equality boundary caveat (numeric pairs
/// straddling a rounding-grid edge within the equality tolerance).
fn subquery_membership(query: &SqlQuery, ctx: Ctx<'_>) -> Result<Rc<HashSet<Value>>> {
    let key = query as *const SqlQuery as usize;
    if let Some(set) = ctx.subqueries.membership.borrow().get(&key) {
        return Ok(set.clone());
    }
    let rows = execute_subquery(query, ctx)?;
    let set: Rc<HashSet<Value>> =
        Rc::new(rows.iter().filter_map(|row| row.first()).cloned().collect());
    ctx.subqueries
        .membership
        .borrow_mut()
        .insert(key, set.clone());
    Ok(set)
}

fn execute_query(query: &SqlQuery, ctx: Ctx<'_>) -> Result<SqlResult> {
    match query {
        SqlQuery::Select(select) => execute_select(select, ctx),
        SqlQuery::Union(left, right) => {
            // SQL UNION deduplicates across the whole result set; the hashed
            // row-key set keeps first occurrences in order.
            let mut rows: SqlResult = Vec::new();
            let mut seen: HashSet<Vec<Value>> = HashSet::new();
            for row in execute_query(left, ctx)?
                .into_iter()
                .chain(execute_query(right, ctx)?)
            {
                if seen.insert(row.clone()) {
                    rows.push(row);
                }
            }
            Ok(rows)
        }
        SqlQuery::ScalarDifference(left, right) => {
            let left = scalar_number(&execute_query(left, ctx)?)?;
            let right = scalar_number(&execute_query(right, ctx)?)?;
            Ok(vec![vec![Value::Num(left - right)]])
        }
    }
}

/// Extract the single numeric value of a scalar result.
fn scalar_number(result: &SqlResult) -> Result<f64> {
    if result.len() != 1 || result[0].len() != 1 {
        return Err(SqlError::ScalarCardinality(result.len()));
    }
    result[0][0]
        .as_number()
        .ok_or_else(|| SqlError::Type(format!("expected a number, found {}", result[0][0])))
}

/// A value produced while evaluating an expression: either a table value or
/// a boolean (from predicates).
#[derive(Debug, Clone, PartialEq)]
enum EvalValue {
    Val(Value),
    Bool(bool),
    Null,
}

impl EvalValue {
    fn truthy(&self) -> bool {
        matches!(self, EvalValue::Bool(true))
    }

    fn as_value(&self) -> Result<Value> {
        match self {
            EvalValue::Val(v) => Ok(v.clone()),
            EvalValue::Bool(b) => Ok(Value::Num(if *b { 1.0 } else { 0.0 })),
            EvalValue::Null => Err(SqlError::Type("NULL used as a value".into())),
        }
    }

    fn as_number(&self) -> Result<f64> {
        match self {
            EvalValue::Val(v) => v
                .as_number()
                .ok_or_else(|| SqlError::Type(format!("expected a number, found {v}"))),
            EvalValue::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            EvalValue::Null => Err(SqlError::Type("NULL used as a number".into())),
        }
    }
}

/// Swap a comparison's operand order: `lit op cell` ⇔ `cell (swap op) lit`.
fn swap_compare(op: CompareOp) -> CompareOp {
    match op {
        CompareOp::Lt => CompareOp::Gt,
        CompareOp::Leq => CompareOp::Geq,
        CompareOp::Gt => CompareOp::Lt,
        CompareOp::Geq => CompareOp::Leq,
        CompareOp::Neq => CompareOp::Neq,
    }
}

/// The physical backend a planned filter runs on.
#[derive(Clone, Copy)]
enum Backend<'a> {
    /// Bucket / sorted-partition lookups against a warm [`TableIndex`].
    Index(&'a TableIndex),
    /// Columnar kernel sweeps over the table's typed column vectors.
    Kernel,
}

/// Plan and execute a `WHERE` clause, or `None` to fall back to the row
/// scan. Chooses the backend by the cost model described in the module docs
/// and (under `observe`) records the decision and its estimated vs actual
/// selectivity.
fn plan_filter(expr: &SqlExpr, ctx: Ctx<'_>) -> Option<Result<Vec<RecordIdx>>> {
    let rows = ctx.table.num_records();
    let (backend, estimated) = match ctx.index {
        Some(index) => {
            // Plannability and selectivity in one walk over the predicate;
            // `None` (unplannable shape or unknown column) → row scan.
            let estimated = estimate_matches(expr, index, rows)?;
            if ctx.kernels && 2 * estimated >= rows {
                // Dense predicate: range lookups materialize through a
                // BTreeSet, so the flat typed sweep wins.
                (Backend::Kernel, estimated)
            } else {
                (Backend::Index(index), estimated)
            }
        }
        // Cold with kernels (Auto): sweep, never build. With no histogram
        // the planner assumes half the table matches.
        None if ctx.kernels => (Backend::Kernel, rows / 2),
        // ForceScan: nothing is planned.
        None => return None,
    };
    let result = planned_filter(expr, ctx, backend)?;
    if let Some(counters) = ctx.observe {
        match backend {
            Backend::Index(_) => counters.record_index_chosen(),
            Backend::Kernel => counters.record_kernel_chosen(),
        }
        if let Ok(records) = &result {
            counters.record_selectivity(estimated as u64, records.len() as u64);
        }
    }
    Some(result)
}

/// Estimated matching rows of a plannable predicate, from the warm index's
/// bucket sizes; `None` when the shape (or a column) is not plannable. The
/// plannable shapes here mirror [`planned_filter`] exactly.
fn estimate_matches(expr: &SqlExpr, index: &TableIndex, rows: usize) -> Option<usize> {
    match expr {
        SqlExpr::Equals(a, b) => {
            if let Some((column, literal)) = column_literal(a, b) {
                let column = index.column_index(column)?;
                return Some(index.records_with_value(column, literal).len());
            }
            // Column = (scalar subquery): the needle is unknown until the
            // subquery runs, so estimate with the mean bucket size.
            let column = match (a.as_ref(), b.as_ref()) {
                (SqlExpr::Column(name), SqlExpr::Scalar(_))
                | (SqlExpr::Scalar(_), SqlExpr::Column(name)) => name,
                _ => return None,
            };
            let column = index.column_index(column)?;
            let distinct = index.column(column).num_distinct().max(1);
            Some((rows / distinct).max(1))
        }
        SqlExpr::Compare(op, a, b) => {
            let (column, literal, op) = compare_parts(*op, a, b)?;
            let column = index.column_index(column)?;
            let Some(threshold) = literal.as_number() else {
                return Some(0);
            };
            let col = index.column(column);
            Some(match op {
                CompareOp::Lt => col.numeric_below(threshold, false).len(),
                CompareOp::Leq => col.numeric_below(threshold, true).len(),
                CompareOp::Gt => col.numeric_above(threshold, false).len(),
                CompareOp::Geq => col.numeric_above(threshold, true).len(),
                CompareOp::Neq => col.numeric_entries().len(),
            })
        }
        SqlExpr::InList(inner, values) => {
            let SqlExpr::Column(name) = inner.as_ref() else {
                return None;
            };
            let column = index.column_index(name)?;
            let total: usize = values
                .iter()
                .map(|value| index.records_with_value(column, value).len())
                .sum();
            Some(total.min(rows))
        }
        // `Index IN (subquery)`: the result size is the subquery's, unknown
        // until it runs — assume half the table.
        SqlExpr::InSubquery(inner, _) if matches!(inner.as_ref(), SqlExpr::Index) => Some(rows / 2),
        SqlExpr::And(a, b) => {
            Some(estimate_matches(a, index, rows)?.min(estimate_matches(b, index, rows)?))
        }
        SqlExpr::Or(a, b) => {
            Some((estimate_matches(a, index, rows)? + estimate_matches(b, index, rows)?).min(rows))
        }
        _ => None,
    }
}

/// The `(column, literal, op)` of a comparison after normalizing a
/// literal-on-the-left operand order.
fn compare_parts<'e>(
    op: CompareOp,
    a: &'e SqlExpr,
    b: &'e SqlExpr,
) -> Option<(&'e str, &'e Value, CompareOp)> {
    match (a, b) {
        (SqlExpr::Column(name), SqlExpr::Literal(value)) => Some((name, value, op)),
        (SqlExpr::Literal(value), SqlExpr::Column(name)) => Some((name, value, swap_compare(op))),
        _ => None,
    }
}

/// Execute a plannable `WHERE` clause on `backend`: returns the matching
/// records (ascending) when the predicate is a combination of per-column
/// value / range / scalar subquery tests, `None` when the engine must fall
/// back to a row scan.
///
/// Planned predicates either cannot error per row (all referenced columns
/// exist, literals only) or error identically to the first row's evaluation
/// (scalar subqueries; the planner is only consulted for non-empty tables),
/// so taking the fast path never changes observable behavior.
fn planned_filter(
    expr: &SqlExpr,
    ctx: Ctx<'_>,
    backend: Backend<'_>,
) -> Option<Result<Vec<RecordIdx>>> {
    match expr {
        SqlExpr::Equals(a, b) => {
            if let Some((column, literal)) = column_literal(a, b) {
                let column = ctx.column_index(column)?;
                return Some(Ok(lookup_eq(ctx, backend, column, literal)));
            }
            // Column = (scalar subquery): evaluate the subquery once, then a
            // point lookup. The per-row path evaluates the same subquery for
            // every record, erroring on the first row if it is not 1×1 —
            // matched here by erroring before any row is produced.
            let (column, query) = match (a.as_ref(), b.as_ref()) {
                (SqlExpr::Column(name), SqlExpr::Scalar(query))
                | (SqlExpr::Scalar(query), SqlExpr::Column(name)) => (name, query),
                _ => return None,
            };
            let column = ctx.column_index(column)?;
            let rows = match execute_subquery(query, ctx) {
                Ok(rows) => rows,
                Err(error) => return Some(Err(error)),
            };
            if rows.len() != 1 || rows[0].len() != 1 {
                return Some(Err(SqlError::ScalarCardinality(rows.len())));
            }
            Some(Ok(lookup_eq(ctx, backend, column, &rows[0][0])))
        }
        SqlExpr::Compare(op, a, b) => {
            let (column, literal, op) = compare_parts(*op, a, b)?;
            let column = ctx.column_index(column)?;
            // A non-numeric literal compares false against every row.
            let Some(threshold) = literal.as_number() else {
                return Some(Ok(Vec::new()));
            };
            Some(Ok(match backend {
                Backend::Index(index) => compare_records(index, column, op, threshold)
                    .into_iter()
                    .collect(),
                Backend::Kernel => ctx.table.filter_num(column, |n| op.compare(n, threshold)),
            }))
        }
        SqlExpr::InList(inner, values) => {
            let SqlExpr::Column(name) = inner.as_ref() else {
                return None;
            };
            let column = ctx.column_index(name)?;
            Some(Ok(match backend {
                Backend::Index(index) => {
                    let mut records: Vec<RecordIdx> = values
                        .iter()
                        .flat_map(|value| index.records_with_value(column, value).iter().copied())
                        .collect();
                    records.sort_unstable();
                    records.dedup();
                    records
                }
                Backend::Kernel => ctx.table.filter_in(column, values),
            }))
        }
        SqlExpr::InSubquery(inner, query) => {
            // Only the translation's favourite shape `Index IN (subquery)`:
            // its matching records are the subquery's first-column values
            // read back as record indices, so the per-row membership loop
            // collapses to one pass over the (memoized) result set. The
            // `contains` re-check reproduces the row loop's hash-set
            // semantics exactly — a candidate survives iff the row loop's
            // `members.contains(Num(record))` test would.
            if !matches!(inner.as_ref(), SqlExpr::Index) {
                return None;
            }
            let members = match subquery_membership(query, ctx) {
                Ok(members) => members,
                Err(error) => return Some(Err(error)),
            };
            let rows = ctx.table.num_records();
            let mut records: Vec<RecordIdx> = members
                .iter()
                .filter_map(|member| member.as_number())
                .filter(|n| n.is_finite())
                .map(f64::round)
                .filter(|&n| n >= 0.0 && n < rows as f64)
                .map(|n| n as RecordIdx)
                .filter(|&record| members.contains(&Value::Num(record as f64)))
                .collect();
            records.sort_unstable();
            records.dedup();
            Some(Ok(records))
        }
        SqlExpr::And(a, b) => {
            let left = match planned_filter(a, ctx, backend)? {
                Ok(records) => records,
                Err(error) => return Some(Err(error)),
            };
            if left.is_empty() {
                // Mirror the row loop's `&&` short-circuit: with no row
                // passing the left side, the right side is never evaluated
                // (and so cannot error).
                return Some(Ok(left));
            }
            let right = match planned_filter(b, ctx, backend)? {
                Ok(records) => records,
                Err(error) => return Some(Err(error)),
            };
            let right: HashSet<RecordIdx> = right.into_iter().collect();
            Some(Ok(left.into_iter().filter(|r| right.contains(r)).collect()))
        }
        SqlExpr::Or(a, b) => {
            let left = match planned_filter(a, ctx, backend)? {
                Ok(records) => records,
                Err(error) => return Some(Err(error)),
            };
            if left.len() == ctx.table.num_records() {
                // Mirror the row loop's `||` short-circuit: every row passes
                // the left side, so the right side is never evaluated.
                return Some(Ok(left));
            }
            let right = match planned_filter(b, ctx, backend)? {
                Ok(records) => records,
                Err(error) => return Some(Err(error)),
            };
            let mut merged: Vec<RecordIdx> = left.into_iter().chain(right).collect();
            merged.sort_unstable();
            merged.dedup();
            Some(Ok(merged))
        }
        _ => None,
    }
}

/// Point equality lookup on the chosen backend. Both agree with the row
/// scan's `Value` equality (the kernel by per-layout construction, the
/// index by its build).
fn lookup_eq(ctx: Ctx<'_>, backend: Backend<'_>, column: usize, value: &Value) -> Vec<RecordIdx> {
    match backend {
        Backend::Index(index) => index.records_with_value(column, value).to_vec(),
        Backend::Kernel => ctx.table.filter_eq(column, value),
    }
}

/// The `(column, literal)` operands of a symmetric predicate, if that is
/// what the two sides are.
fn column_literal<'e>(a: &'e SqlExpr, b: &'e SqlExpr) -> Option<(&'e str, &'e Value)> {
    match (a, b) {
        (SqlExpr::Column(name), SqlExpr::Literal(value))
        | (SqlExpr::Literal(value), SqlExpr::Column(name)) => Some((name, value)),
        _ => None,
    }
}

fn execute_select(select: &SqlSelect, ctx: Ctx<'_>) -> Result<SqlResult> {
    // 1. Filter — through the planner when possible, else a row scan. The
    // planner is skipped for empty tables: the row loop never runs there,
    // so nothing (not even an erroring scalar subquery) may execute.
    let matching: Vec<RecordIdx> = match &select.filter {
        None => ctx.table.record_indices().collect(),
        Some(filter) => {
            let planned = if ctx.table.is_empty() {
                None
            } else {
                plan_filter(filter, ctx)
            };
            match planned {
                Some(records) => records?,
                None => {
                    if let Some(counters) = ctx.observe {
                        counters.record_scan_chosen();
                    }
                    let mut matching = Vec::new();
                    for record in ctx.table.record_indices() {
                        if eval_row(filter, ctx, record)?.truthy() {
                            matching.push(record);
                        }
                    }
                    matching
                }
            }
        }
    };

    // 2. Group / aggregate / project, collecting (sort_key, row) pairs.
    let mut rows: Vec<(Option<Value>, Vec<Value>)> = Vec::new();
    if let Some(group_expr) = &select.group_by {
        let mut groups: BTreeMap<Value, Vec<RecordIdx>> = BTreeMap::new();
        for &record in &matching {
            let key = eval_row(group_expr, ctx, record)?.as_value()?;
            groups.entry(key).or_default().push(record);
        }
        for (_key, records) in groups {
            let row = project_aggregate(&select.projection, ctx, &records)?;
            let sort_key = match &select.order_by {
                Some((expr, _)) => Some(eval_aggregate_expr(expr, ctx, &records)?.as_value()?),
                None => None,
            };
            rows.push((sort_key, row));
        }
    } else if projection_has_aggregate(&select.projection) {
        let row = project_aggregate(&select.projection, ctx, &matching)?;
        rows.push((None, row));
    } else {
        for &record in &matching {
            let row = if select.projection.is_empty() {
                ctx.table
                    .record_values(record)
                    .map_err(|_| SqlError::Type("record out of range".into()))?
            } else {
                select
                    .projection
                    .iter()
                    .map(|expr| eval_row(expr, ctx, record).and_then(|v| v.as_value()))
                    .collect::<Result<Vec<Value>>>()?
            };
            let sort_key = match &select.order_by {
                Some((expr, _)) => Some(eval_row(expr, ctx, record)?.as_value()?),
                None => None,
            };
            rows.push((sort_key, row));
        }
    }

    // 3. Order.
    if let Some((_, order)) = &select.order_by {
        rows.sort_by(|a, b| {
            let cmp = a.0.cmp(&b.0);
            match order {
                SqlOrder::Asc => cmp,
                SqlOrder::Desc => cmp.reverse(),
            }
        });
    }

    // 4. Distinct (hashed row-key set, first occurrence wins) and limit.
    let mut out: SqlResult = Vec::new();
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    for (_, row) in rows {
        if select.distinct && !seen.insert(row.clone()) {
            continue;
        }
        out.push(row);
        if let Some(limit) = select.limit {
            if out.len() >= limit {
                break;
            }
        }
    }
    Ok(out)
}

fn projection_has_aggregate(projection: &[SqlExpr]) -> bool {
    projection.iter().any(contains_aggregate)
}

fn contains_aggregate(expr: &SqlExpr) -> bool {
    match expr {
        SqlExpr::Aggregate(_, _) => true,
        SqlExpr::Equals(a, b)
        | SqlExpr::Compare(_, a, b)
        | SqlExpr::Arith(_, a, b)
        | SqlExpr::And(a, b)
        | SqlExpr::Or(a, b) => contains_aggregate(a) || contains_aggregate(b),
        SqlExpr::InSubquery(a, _) | SqlExpr::InList(a, _) => contains_aggregate(a),
        SqlExpr::Column(_) | SqlExpr::Index | SqlExpr::Literal(_) | SqlExpr::Scalar(_) => false,
    }
}

fn project_aggregate(
    projection: &[SqlExpr],
    ctx: Ctx<'_>,
    records: &[RecordIdx],
) -> Result<Vec<Value>> {
    projection
        .iter()
        .map(|expr| eval_aggregate_expr(expr, ctx, records).and_then(|v| v.as_value()))
        .collect()
}

/// Evaluate an expression in aggregate context: aggregates range over
/// `records`, other sub-expressions are evaluated on the first record of the
/// group (they are group keys in every query the translation produces).
fn eval_aggregate_expr(expr: &SqlExpr, ctx: Ctx<'_>, records: &[RecordIdx]) -> Result<EvalValue> {
    match expr {
        SqlExpr::Aggregate(op, inner) => {
            if *op == AggregateOp::Count {
                return Ok(EvalValue::Val(Value::Num(records.len() as f64)));
            }
            // Columnar fast path (Auto only): a fully-numeric column folds
            // directly over its typed f64 vector — no per-row Value
            // round-trip, and per-row evaluation cannot error there.
            if ctx.kernels {
                if let SqlExpr::Column(name) = inner.as_ref() {
                    if let Some(column) = ctx.column_index(name) {
                        if let Some(values) = ctx.table.dense_f64(column) {
                            return Ok(fold_dense(*op, values, records));
                        }
                    }
                }
            }
            let mut numbers = Vec::with_capacity(records.len());
            for &record in records {
                let value = eval_row(inner, ctx, record)?;
                numbers.push(value.as_number()?);
            }
            if numbers.is_empty() {
                return Ok(EvalValue::Null);
            }
            let result = match op {
                AggregateOp::Max => numbers.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                AggregateOp::Min => numbers.iter().copied().fold(f64::INFINITY, f64::min),
                AggregateOp::Sum => numbers.iter().sum(),
                AggregateOp::Avg => numbers.iter().sum::<f64>() / numbers.len() as f64,
                AggregateOp::Count => unreachable!("count handled above"),
            };
            Ok(EvalValue::Val(Value::Num(result)))
        }
        SqlExpr::Arith(op, left, right) => {
            let left = eval_aggregate_expr(left, ctx, records)?.as_number()?;
            let right = eval_aggregate_expr(right, ctx, records)?.as_number()?;
            let value = match op {
                ArithOp::Add => left + right,
                ArithOp::Sub => left - right,
            };
            Ok(EvalValue::Val(Value::Num(value)))
        }
        other => match records.first() {
            Some(&record) => eval_row(other, ctx, record),
            None => Ok(EvalValue::Null),
        },
    }
}

/// Fold an aggregate over the records' entries of a dense (null-free) f64
/// column — same fold order and same results as the per-row path.
fn fold_dense(op: AggregateOp, values: &[f64], records: &[RecordIdx]) -> EvalValue {
    if records.is_empty() {
        return EvalValue::Null;
    }
    let nums = records.iter().map(|&record| values[record]);
    let result = match op {
        AggregateOp::Max => nums.fold(f64::NEG_INFINITY, f64::max),
        AggregateOp::Min => nums.fold(f64::INFINITY, f64::min),
        AggregateOp::Sum => nums.sum(),
        AggregateOp::Avg => nums.sum::<f64>() / records.len() as f64,
        AggregateOp::Count => unreachable!("count handled before the fast path"),
    };
    EvalValue::Val(Value::Num(result))
}

/// Evaluate an expression against a single record.
fn eval_row(expr: &SqlExpr, ctx: Ctx<'_>, record: RecordIdx) -> Result<EvalValue> {
    match expr {
        SqlExpr::Column(name) => {
            let column = ctx
                .column_index(name)
                .ok_or_else(|| SqlError::UnknownColumn(name.clone()))?;
            Ok(ctx
                .table
                .value_at(record, column)
                .map(EvalValue::Val)
                .unwrap_or(EvalValue::Null))
        }
        SqlExpr::Index => Ok(EvalValue::Val(Value::Num(record as f64))),
        SqlExpr::Literal(value) => Ok(EvalValue::Val(value.clone())),
        SqlExpr::Aggregate(_, _) => Err(SqlError::Type(
            "aggregate used outside a projection or ORDER BY context".into(),
        )),
        SqlExpr::Equals(left, right) => {
            let left = eval_row(left, ctx, record)?;
            let right = eval_row(right, ctx, record)?;
            match (left, right) {
                (EvalValue::Null, _) | (_, EvalValue::Null) => Ok(EvalValue::Bool(false)),
                (l, r) => Ok(EvalValue::Bool(l.as_value()? == r.as_value()?)),
            }
        }
        SqlExpr::Compare(op, left, right) => {
            let left = eval_row(left, ctx, record)?;
            let right = eval_row(right, ctx, record)?;
            match (left, right) {
                (EvalValue::Null, _) | (_, EvalValue::Null) => Ok(EvalValue::Bool(false)),
                (l, r) => match (l.as_value()?.as_number(), r.as_value()?.as_number()) {
                    (Some(a), Some(b)) => Ok(EvalValue::Bool(op.compare(a, b))),
                    _ => Ok(EvalValue::Bool(false)),
                },
            }
        }
        SqlExpr::InSubquery(inner, query) => {
            let needle = eval_row(inner, ctx, record)?;
            let EvalValue::Val(needle) = needle else {
                return Ok(EvalValue::Bool(false));
            };
            let members = subquery_membership(query, ctx)?;
            Ok(EvalValue::Bool(members.contains(&needle)))
        }
        SqlExpr::InList(inner, values) => {
            let needle = eval_row(inner, ctx, record)?;
            let EvalValue::Val(needle) = needle else {
                return Ok(EvalValue::Bool(false));
            };
            Ok(EvalValue::Bool(values.contains(&needle)))
        }
        SqlExpr::Scalar(query) => {
            let rows = execute_subquery(query, ctx)?;
            if rows.len() != 1 || rows[0].len() != 1 {
                return Err(SqlError::ScalarCardinality(rows.len()));
            }
            Ok(EvalValue::Val(rows[0][0].clone()))
        }
        SqlExpr::Arith(op, left, right) => {
            let left = eval_row(left, ctx, record)?.as_number()?;
            let right = eval_row(right, ctx, record)?.as_number()?;
            let value = match op {
                ArithOp::Add => left + right,
                ArithOp::Sub => left - right,
            };
            Ok(EvalValue::Val(Value::Num(value)))
        }
        SqlExpr::And(left, right) => Ok(EvalValue::Bool(
            eval_row(left, ctx, record)?.truthy() && eval_row(right, ctx, record)?.truthy(),
        )),
        SqlExpr::Or(left, right) => Ok(EvalValue::Bool(
            eval_row(left, ctx, record)?.truthy() || eval_row(right, ctx, record)?.truthy(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{SqlExpr, SqlOrder, SqlQuery, SqlSelect};
    use wtq_dcs::CompareOp;
    use wtq_table::samples;

    fn col(name: &str) -> SqlExpr {
        SqlExpr::Column(name.to_string())
    }

    fn lit(value: Value) -> SqlExpr {
        SqlExpr::Literal(value)
    }

    /// Cold cost-based execution (no pre-built index).
    fn execute(query: &SqlQuery, table: &Table) -> Result<SqlResult> {
        SqlEngine::new(table).execute(query, PlanMode::Auto)
    }

    /// The scan reference.
    fn execute_scan(query: &SqlQuery, table: &Table) -> Result<SqlResult> {
        SqlEngine::new(table).execute(query, PlanMode::ForceScan)
    }

    #[test]
    fn select_star_with_filter() {
        // SELECT * FROM T WHERE Country = 'Greece'
        let table = samples::olympics();
        let q = SqlQuery::select(SqlSelect::project(vec![]).with_filter(SqlExpr::Equals(
            Box::new(col("Country")),
            Box::new(lit(Value::str("Greece"))),
        )));
        let rows = execute(&q, &table).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][2], Value::str("Athens"));
    }

    #[test]
    fn example_3_2_city_of_minimum_year() {
        let table = samples::olympics();
        let min_year = SqlQuery::select(SqlSelect::project(vec![SqlExpr::Aggregate(
            AggregateOp::Min,
            Box::new(col("Year")),
        )]));
        let inner = SqlQuery::select(SqlSelect::project(vec![SqlExpr::Index]).with_filter(
            SqlExpr::Equals(
                Box::new(col("Year")),
                Box::new(SqlExpr::Scalar(Box::new(min_year))),
            ),
        ));
        let outer = SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
            SqlExpr::InSubquery(Box::new(SqlExpr::Index), Box::new(inner)),
        ));
        assert_eq!(
            execute(&outer, &table).unwrap(),
            vec![vec![Value::str("Athens")]]
        );
    }

    #[test]
    fn aggregate_projection_produces_one_row() {
        let table = samples::medals();
        let q = SqlQuery::select(SqlSelect::project(vec![SqlExpr::Aggregate(
            AggregateOp::Sum,
            Box::new(col("Gold")),
        )]));
        assert_eq!(execute(&q, &table).unwrap(), vec![vec![Value::num(298.0)]]);
    }

    #[test]
    fn count_of_filtered_rows() {
        let table = samples::olympics();
        let q = SqlQuery::select(
            SqlSelect::project(vec![SqlExpr::Aggregate(
                AggregateOp::Count,
                Box::new(SqlExpr::Index),
            )])
            .with_filter(SqlExpr::Equals(
                Box::new(col("City")),
                Box::new(lit(Value::str("Athens"))),
            )),
        );
        assert_eq!(execute(&q, &table).unwrap(), vec![vec![Value::num(2.0)]]);
    }

    #[test]
    fn comparison_and_conjunction() {
        let table = samples::squad();
        let q = SqlQuery::select(
            SqlSelect::project(vec![col("Name")]).with_filter(SqlExpr::And(
                Box::new(SqlExpr::Compare(
                    CompareOp::Gt,
                    Box::new(col("Games")),
                    Box::new(lit(Value::num(4.0))),
                )),
                Box::new(SqlExpr::Equals(
                    Box::new(col("Position")),
                    Box::new(lit(Value::str("MF"))),
                )),
            )),
        );
        let rows = execute(&q, &table).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn group_by_order_by_count_limit() {
        // SELECT Lake FROM T GROUP BY Lake ORDER BY COUNT(Index) DESC LIMIT 1
        let table = samples::shipwrecks();
        let select = SqlSelect {
            projection: vec![col("Lake")],
            distinct: false,
            filter: None,
            group_by: Some(col("Lake")),
            order_by: Some((
                SqlExpr::Aggregate(AggregateOp::Count, Box::new(SqlExpr::Index)),
                SqlOrder::Desc,
            )),
            limit: Some(1),
        };
        assert_eq!(
            execute(&SqlQuery::Select(select), &table).unwrap(),
            vec![vec![Value::str("Lake Huron")]]
        );
    }

    #[test]
    fn scalar_difference() {
        let table = samples::shipwrecks();
        let count_of = |lake: &str| {
            SqlQuery::select(
                SqlSelect::project(vec![SqlExpr::Aggregate(
                    AggregateOp::Count,
                    Box::new(SqlExpr::Index),
                )])
                .with_filter(SqlExpr::Equals(
                    Box::new(col("Lake")),
                    Box::new(lit(Value::str(lake))),
                )),
            )
        };
        let q = SqlQuery::ScalarDifference(
            Box::new(count_of("Lake Huron")),
            Box::new(count_of("Lake Erie")),
        );
        assert_eq!(execute(&q, &table).unwrap(), vec![vec![Value::num(3.0)]]);
    }

    #[test]
    fn union_deduplicates() {
        let table = samples::olympics();
        let cities =
            |country: &str| {
                SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
                    SqlExpr::Equals(Box::new(col("Country")), Box::new(lit(Value::str(country)))),
                ))
            };
        let q = SqlQuery::Union(Box::new(cities("Greece")), Box::new(cities("Greece")));
        let rows = execute(&q, &table).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::str("Athens"));
    }

    #[test]
    fn distinct_and_in_list() {
        let table = samples::olympics();
        let select = SqlSelect {
            projection: vec![col("Country")],
            distinct: true,
            filter: Some(SqlExpr::InList(
                Box::new(col("City")),
                vec![Value::str("Athens"), Value::str("London")],
            )),
            group_by: None,
            order_by: None,
            limit: None,
        };
        let rows = execute(&SqlQuery::Select(select), &table).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn errors_are_reported() {
        let table = samples::olympics();
        let q = SqlQuery::select(SqlSelect::project(vec![col("Continent")]));
        assert!(matches!(
            execute(&q, &table),
            Err(SqlError::UnknownColumn(_))
        ));

        // Scalar subquery with several rows.
        let many = SqlQuery::select(SqlSelect::project(vec![col("City")]));
        let q = SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
            SqlExpr::Equals(
                Box::new(col("City")),
                Box::new(SqlExpr::Scalar(Box::new(many))),
            ),
        ));
        assert!(matches!(
            execute(&q, &table),
            Err(SqlError::ScalarCardinality(_))
        ));
    }

    #[test]
    fn index_arithmetic_shifts_rows() {
        // SELECT City FROM T WHERE Index IN (SELECT Index - 1 FROM T WHERE City = 'London')
        let table = samples::olympics();
        let inner = SqlQuery::select(
            SqlSelect::project(vec![SqlExpr::Arith(
                ArithOp::Sub,
                Box::new(SqlExpr::Index),
                Box::new(lit(Value::num(1.0))),
            )])
            .with_filter(SqlExpr::Equals(
                Box::new(col("City")),
                Box::new(lit(Value::str("London"))),
            )),
        );
        let outer = SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
            SqlExpr::InSubquery(Box::new(SqlExpr::Index), Box::new(inner)),
        ));
        let rows = execute(&outer, &table).unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::str("St. Louis")], vec![Value::str("Beijing")]]
        );
    }

    #[test]
    fn all_plan_modes_agree_on_planned_filters() {
        let table = samples::squad();
        // An AND/OR combination the planner handles without a row scan.
        let filter = SqlExpr::Or(
            Box::new(SqlExpr::And(
                Box::new(SqlExpr::Compare(
                    CompareOp::Geq,
                    Box::new(col("Games")),
                    Box::new(lit(Value::num(5.0))),
                )),
                Box::new(SqlExpr::Equals(
                    Box::new(col("Position")),
                    Box::new(lit(Value::str("DF"))),
                )),
            )),
            Box::new(SqlExpr::InList(
                Box::new(col("Name")),
                vec![Value::str("Lucien Favre")],
            )),
        );
        let q = SqlQuery::select(SqlSelect::project(vec![col("Name")]).with_filter(filter));
        let engine = SqlEngine::new(&table);
        let scan = engine.execute(&q, PlanMode::ForceScan).unwrap();
        assert_eq!(engine.execute(&q, PlanMode::Auto).unwrap(), scan);
        assert_eq!(engine.execute(&q, PlanMode::ForceIndex).unwrap(), scan);
        // ForceIndex built the engine's own index; Auto now plans warm and
        // must still agree.
        assert_eq!(engine.execute(&q, PlanMode::Auto).unwrap(), scan);

        // A literal-on-the-left comparison takes the swapped-operator path.
        let q = SqlQuery::select(SqlSelect::project(vec![col("Name")]).with_filter(
            SqlExpr::Compare(
                CompareOp::Lt,
                Box::new(lit(Value::num(4.0))),
                Box::new(col("Games")),
            ),
        ));
        let rows = execute(&q, &table).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows, execute_scan(&q, &table).unwrap());
    }

    #[test]
    fn unknown_filter_column_still_errors_lazily() {
        // The planner must not turn a per-row error into an eager one or
        // swallow it: an unknown column inside WHERE falls back to the scan
        // path and errors exactly as before.
        let table = samples::olympics();
        let q = SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
            SqlExpr::Equals(Box::new(col("Continent")), Box::new(lit(Value::str("X")))),
        ));
        assert!(matches!(
            execute(&q, &table),
            Err(SqlError::UnknownColumn(_))
        ));
    }

    #[test]
    fn scalar_subquery_filter_is_planned_and_agrees_with_scan() {
        // SELECT City FROM T WHERE Year = (SELECT MAX(Year) FROM T)
        let table = samples::olympics();
        let max_year = SqlQuery::select(SqlSelect::project(vec![SqlExpr::Aggregate(
            AggregateOp::Max,
            Box::new(col("Year")),
        )]));
        let q = SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
            SqlExpr::Equals(
                Box::new(col("Year")),
                Box::new(SqlExpr::Scalar(Box::new(max_year))),
            ),
        ));
        let rows = execute(&q, &table).unwrap();
        assert_eq!(rows, execute_scan(&q, &table).unwrap());
        assert_eq!(rows, vec![vec![Value::str("Rio de Janeiro")]]);
    }

    #[test]
    fn planner_preserves_boolean_short_circuits() {
        let table = samples::olympics();
        let many = SqlQuery::select(SqlSelect::project(vec![col("City")]));
        let erroring = SqlExpr::Equals(
            Box::new(col("City")),
            Box::new(SqlExpr::Scalar(Box::new(many))),
        );
        // Left side matches nothing → the erroring right side must never run.
        let q = SqlQuery::select(
            SqlSelect::project(vec![col("City")]).with_filter(SqlExpr::And(
                Box::new(SqlExpr::Equals(
                    Box::new(col("Country")),
                    Box::new(lit(Value::str("Atlantis"))),
                )),
                Box::new(erroring.clone()),
            )),
        );
        assert_eq!(
            execute(&q, &table).unwrap(),
            execute_scan(&q, &table).unwrap()
        );
        assert!(execute(&q, &table).unwrap().is_empty());
        // Left side matches everything → same for OR.
        let q = SqlQuery::select(
            SqlSelect::project(vec![col("City")]).with_filter(SqlExpr::Or(
                Box::new(SqlExpr::Compare(
                    CompareOp::Geq,
                    Box::new(col("Year")),
                    Box::new(lit(Value::num(0.0))),
                )),
                Box::new(erroring),
            )),
        );
        assert_eq!(
            execute(&q, &table).unwrap(),
            execute_scan(&q, &table).unwrap()
        );
        assert_eq!(execute(&q, &table).unwrap().len(), table.num_records());
    }

    #[test]
    fn shared_index_engine_agrees_across_modes() {
        let table = samples::olympics();
        let index = TableIndex::new(&table);
        let engine = SqlEngine::with_index(&table, &index);
        let q = SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
            SqlExpr::Equals(
                Box::new(col("Country")),
                Box::new(lit(Value::str("Greece"))),
            ),
        ));
        let scan = engine.execute(&q, PlanMode::ForceScan).unwrap();
        assert_eq!(engine.execute(&q, PlanMode::ForceIndex).unwrap(), scan);
        assert_eq!(engine.execute(&q, PlanMode::Auto).unwrap(), scan);
    }

    #[test]
    fn auto_mode_records_planner_decisions() {
        let table = samples::olympics();
        let q = SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
            SqlExpr::Equals(
                Box::new(col("Country")),
                Box::new(lit(Value::str("Greece"))),
            ),
        ));
        // Cold Auto: the equality is answered by a columnar kernel.
        // Per-engine counters are exact — no deltas, no interference from
        // concurrently running tests.
        let cold = SqlEngine::new(&table);
        let rows = cold.execute(&q, PlanMode::Auto).unwrap();
        let stats = cold.planner_stats();
        assert_eq!(rows.len(), 2);
        assert_eq!(stats.kernel_chosen, 1);
        assert_eq!(stats.actual_rows, rows.len() as u64);
        assert!(stats.estimated_rows > 0);

        // Warm Auto on a selective predicate: the index path is chosen and
        // the bucket-size estimate is exact.
        let index = TableIndex::new(&table);
        let engine = SqlEngine::with_index(&table, &index);
        engine.execute(&q, PlanMode::Auto).unwrap();
        assert_eq!(engine.planner_stats().index_chosen, 1);

        // ForceScan never records decisions.
        let scan_engine = SqlEngine::with_index(&table, &index);
        scan_engine.execute(&q, PlanMode::ForceScan).unwrap();
        assert_eq!(scan_engine.planner_stats(), PlannerStats::default());
    }

    #[test]
    fn planner_counters_are_per_engine() {
        let table = samples::olympics();
        let q = SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
            SqlExpr::Equals(
                Box::new(col("Country")),
                Box::new(lit(Value::str("Greece"))),
            ),
        ));
        let a = SqlEngine::new(&table);
        let b = SqlEngine::new(&table);
        a.execute(&q, PlanMode::Auto).unwrap();
        // Per-engine counters are exact (no deltas needed): engine `b` saw
        // nothing even though `a` ran concurrently with the whole suite.
        assert_eq!(a.planner_stats().kernel_chosen, 1);
        assert_eq!(b.planner_stats(), PlannerStats::default());

        // A shared set accumulates across short-lived engines.
        let shared = Arc::new(PlannerCounters::new());
        for _ in 0..2 {
            SqlEngine::new(&table)
                .with_counters(shared.clone())
                .execute(&q, PlanMode::Auto)
                .unwrap();
        }
        assert_eq!(shared.snapshot().kernel_chosen, 2);
    }

    #[test]
    fn unplannable_filter_counts_as_scan() {
        let table = samples::olympics();
        // `Index = 2` is not a plannable shape (no column name).
        let q = SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
            SqlExpr::Equals(Box::new(SqlExpr::Index), Box::new(lit(Value::num(2.0)))),
        ));
        let engine = SqlEngine::new(&table);
        let rows = engine.execute(&q, PlanMode::Auto).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(engine.planner_stats().scan_chosen, 1);
    }

    #[test]
    fn dense_aggregate_fast_path_matches_reference() {
        let table = samples::medals();
        for op in [
            AggregateOp::Max,
            AggregateOp::Min,
            AggregateOp::Sum,
            AggregateOp::Avg,
        ] {
            let q = SqlQuery::select(SqlSelect::project(vec![SqlExpr::Aggregate(
                op,
                Box::new(col("Gold")),
            )]));
            assert_eq!(
                execute(&q, &table).unwrap(),
                execute_scan(&q, &table).unwrap(),
                "aggregate {op:?} diverged from the scan reference"
            );
        }
    }
}
