//! In-memory executor for the SQL fragment of Table 10.
//!
//! The engine runs a [`SqlQuery`] against a single [`Table`] (the implicit
//! `T` of the translation) and returns plain rows of values. Its purpose in
//! this reproduction is cross-validation: for every lambda DCS operator, the
//! translated SQL must compute the same answer as the lambda DCS evaluator,
//! which is exactly how the paper argues its provenance model is aligned with
//! relational provenance work.

use std::collections::BTreeMap;

use wtq_dcs::AggregateOp;
use wtq_table::{RecordIdx, Table, Value};

use crate::ast::{ArithOp, SqlExpr, SqlOrder, SqlQuery, SqlSelect};
use crate::error::SqlError;
use crate::Result;

/// Query output: a list of rows, each a list of values.
pub type SqlResult = Vec<Vec<Value>>;

/// Execute `query` against `table`.
pub fn execute(query: &SqlQuery, table: &Table) -> Result<SqlResult> {
    match query {
        SqlQuery::Select(select) => execute_select(select, table),
        SqlQuery::Union(left, right) => {
            // SQL UNION deduplicates across the whole result set.
            let mut rows: SqlResult = Vec::new();
            for row in execute(left, table)?
                .into_iter()
                .chain(execute(right, table)?)
            {
                if !rows.contains(&row) {
                    rows.push(row);
                }
            }
            Ok(rows)
        }
        SqlQuery::ScalarDifference(left, right) => {
            let left = scalar_number(&execute(left, table)?)?;
            let right = scalar_number(&execute(right, table)?)?;
            Ok(vec![vec![Value::Num(left - right)]])
        }
    }
}

/// Extract the single numeric value of a scalar result.
fn scalar_number(result: &SqlResult) -> Result<f64> {
    if result.len() != 1 || result[0].len() != 1 {
        return Err(SqlError::ScalarCardinality(result.len()));
    }
    result[0][0]
        .as_number()
        .ok_or_else(|| SqlError::Type(format!("expected a number, found {}", result[0][0])))
}

/// A value produced while evaluating an expression: either a table value or
/// a boolean (from predicates).
#[derive(Debug, Clone, PartialEq)]
enum EvalValue {
    Val(Value),
    Bool(bool),
    Null,
}

impl EvalValue {
    fn truthy(&self) -> bool {
        matches!(self, EvalValue::Bool(true))
    }

    fn as_value(&self) -> Result<Value> {
        match self {
            EvalValue::Val(v) => Ok(v.clone()),
            EvalValue::Bool(b) => Ok(Value::Num(if *b { 1.0 } else { 0.0 })),
            EvalValue::Null => Err(SqlError::Type("NULL used as a value".into())),
        }
    }

    fn as_number(&self) -> Result<f64> {
        match self {
            EvalValue::Val(v) => v
                .as_number()
                .ok_or_else(|| SqlError::Type(format!("expected a number, found {v}"))),
            EvalValue::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            EvalValue::Null => Err(SqlError::Type("NULL used as a number".into())),
        }
    }
}

fn execute_select(select: &SqlSelect, table: &Table) -> Result<SqlResult> {
    // 1. Filter.
    let mut matching: Vec<RecordIdx> = Vec::new();
    for record in table.record_indices() {
        let keep = match &select.filter {
            None => true,
            Some(filter) => eval_row(filter, table, record)?.truthy(),
        };
        if keep {
            matching.push(record);
        }
    }

    // 2. Group / aggregate / project, collecting (sort_key, row) pairs.
    let mut rows: Vec<(Option<Value>, Vec<Value>)> = Vec::new();
    if let Some(group_expr) = &select.group_by {
        let mut groups: BTreeMap<Value, Vec<RecordIdx>> = BTreeMap::new();
        for &record in &matching {
            let key = eval_row(group_expr, table, record)?.as_value()?;
            groups.entry(key).or_default().push(record);
        }
        for (_key, records) in groups {
            let row = project_aggregate(&select.projection, table, &records)?;
            let sort_key = match &select.order_by {
                Some((expr, _)) => Some(eval_aggregate_expr(expr, table, &records)?.as_value()?),
                None => None,
            };
            rows.push((sort_key, row));
        }
    } else if projection_has_aggregate(&select.projection) {
        let row = project_aggregate(&select.projection, table, &matching)?;
        rows.push((None, row));
    } else {
        for &record in &matching {
            let row = if select.projection.is_empty() {
                table
                    .record(record)
                    .map_err(|_| SqlError::Type("record out of range".into()))?
                    .to_vec()
            } else {
                select
                    .projection
                    .iter()
                    .map(|expr| eval_row(expr, table, record).and_then(|v| v.as_value()))
                    .collect::<Result<Vec<Value>>>()?
            };
            let sort_key = match &select.order_by {
                Some((expr, _)) => Some(eval_row(expr, table, record)?.as_value()?),
                None => None,
            };
            rows.push((sort_key, row));
        }
    }

    // 3. Order.
    if let Some((_, order)) = &select.order_by {
        rows.sort_by(|a, b| {
            let cmp = a.0.cmp(&b.0);
            match order {
                SqlOrder::Asc => cmp,
                SqlOrder::Desc => cmp.reverse(),
            }
        });
    }

    // 4. Distinct and limit.
    let mut out: SqlResult = Vec::new();
    for (_, row) in rows {
        if select.distinct && out.contains(&row) {
            continue;
        }
        out.push(row);
        if let Some(limit) = select.limit {
            if out.len() >= limit {
                break;
            }
        }
    }
    Ok(out)
}

fn projection_has_aggregate(projection: &[SqlExpr]) -> bool {
    projection.iter().any(contains_aggregate)
}

fn contains_aggregate(expr: &SqlExpr) -> bool {
    match expr {
        SqlExpr::Aggregate(_, _) => true,
        SqlExpr::Equals(a, b)
        | SqlExpr::Compare(_, a, b)
        | SqlExpr::Arith(_, a, b)
        | SqlExpr::And(a, b)
        | SqlExpr::Or(a, b) => contains_aggregate(a) || contains_aggregate(b),
        SqlExpr::InSubquery(a, _) | SqlExpr::InList(a, _) => contains_aggregate(a),
        SqlExpr::Column(_) | SqlExpr::Index | SqlExpr::Literal(_) | SqlExpr::Scalar(_) => false,
    }
}

fn project_aggregate(
    projection: &[SqlExpr],
    table: &Table,
    records: &[RecordIdx],
) -> Result<Vec<Value>> {
    projection
        .iter()
        .map(|expr| eval_aggregate_expr(expr, table, records).and_then(|v| v.as_value()))
        .collect()
}

/// Evaluate an expression in aggregate context: aggregates range over
/// `records`, other sub-expressions are evaluated on the first record of the
/// group (they are group keys in every query the translation produces).
fn eval_aggregate_expr(expr: &SqlExpr, table: &Table, records: &[RecordIdx]) -> Result<EvalValue> {
    match expr {
        SqlExpr::Aggregate(op, inner) => {
            if *op == AggregateOp::Count {
                return Ok(EvalValue::Val(Value::Num(records.len() as f64)));
            }
            let mut numbers = Vec::with_capacity(records.len());
            for &record in records {
                let value = eval_row(inner, table, record)?;
                numbers.push(value.as_number()?);
            }
            if numbers.is_empty() {
                return Ok(EvalValue::Null);
            }
            let result = match op {
                AggregateOp::Max => numbers.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                AggregateOp::Min => numbers.iter().copied().fold(f64::INFINITY, f64::min),
                AggregateOp::Sum => numbers.iter().sum(),
                AggregateOp::Avg => numbers.iter().sum::<f64>() / numbers.len() as f64,
                AggregateOp::Count => unreachable!("count handled above"),
            };
            Ok(EvalValue::Val(Value::Num(result)))
        }
        SqlExpr::Arith(op, left, right) => {
            let left = eval_aggregate_expr(left, table, records)?.as_number()?;
            let right = eval_aggregate_expr(right, table, records)?.as_number()?;
            let value = match op {
                ArithOp::Add => left + right,
                ArithOp::Sub => left - right,
            };
            Ok(EvalValue::Val(Value::Num(value)))
        }
        other => match records.first() {
            Some(&record) => eval_row(other, table, record),
            None => Ok(EvalValue::Null),
        },
    }
}

/// Evaluate an expression against a single record.
fn eval_row(expr: &SqlExpr, table: &Table, record: RecordIdx) -> Result<EvalValue> {
    match expr {
        SqlExpr::Column(name) => {
            let column = table
                .column_index(name)
                .ok_or_else(|| SqlError::UnknownColumn(name.clone()))?;
            Ok(table
                .value_at(record, column)
                .map(|v| EvalValue::Val(v.clone()))
                .unwrap_or(EvalValue::Null))
        }
        SqlExpr::Index => Ok(EvalValue::Val(Value::Num(record as f64))),
        SqlExpr::Literal(value) => Ok(EvalValue::Val(value.clone())),
        SqlExpr::Aggregate(_, _) => Err(SqlError::Type(
            "aggregate used outside a projection or ORDER BY context".into(),
        )),
        SqlExpr::Equals(left, right) => {
            let left = eval_row(left, table, record)?;
            let right = eval_row(right, table, record)?;
            match (left, right) {
                (EvalValue::Null, _) | (_, EvalValue::Null) => Ok(EvalValue::Bool(false)),
                (l, r) => Ok(EvalValue::Bool(l.as_value()? == r.as_value()?)),
            }
        }
        SqlExpr::Compare(op, left, right) => {
            let left = eval_row(left, table, record)?;
            let right = eval_row(right, table, record)?;
            match (left, right) {
                (EvalValue::Null, _) | (_, EvalValue::Null) => Ok(EvalValue::Bool(false)),
                (l, r) => match (l.as_value()?.as_number(), r.as_value()?.as_number()) {
                    (Some(a), Some(b)) => Ok(EvalValue::Bool(op.compare(a, b))),
                    _ => Ok(EvalValue::Bool(false)),
                },
            }
        }
        SqlExpr::InSubquery(inner, query) => {
            let needle = eval_row(inner, table, record)?;
            let EvalValue::Val(needle) = needle else {
                return Ok(EvalValue::Bool(false));
            };
            let rows = execute(query, table)?;
            let found = rows.iter().any(|row| row.first() == Some(&needle));
            Ok(EvalValue::Bool(found))
        }
        SqlExpr::InList(inner, values) => {
            let needle = eval_row(inner, table, record)?;
            let EvalValue::Val(needle) = needle else {
                return Ok(EvalValue::Bool(false));
            };
            Ok(EvalValue::Bool(values.contains(&needle)))
        }
        SqlExpr::Scalar(query) => {
            let rows = execute(query, table)?;
            if rows.len() != 1 || rows[0].len() != 1 {
                return Err(SqlError::ScalarCardinality(rows.len()));
            }
            Ok(EvalValue::Val(rows[0][0].clone()))
        }
        SqlExpr::Arith(op, left, right) => {
            let left = eval_row(left, table, record)?.as_number()?;
            let right = eval_row(right, table, record)?.as_number()?;
            let value = match op {
                ArithOp::Add => left + right,
                ArithOp::Sub => left - right,
            };
            Ok(EvalValue::Val(Value::Num(value)))
        }
        SqlExpr::And(left, right) => Ok(EvalValue::Bool(
            eval_row(left, table, record)?.truthy() && eval_row(right, table, record)?.truthy(),
        )),
        SqlExpr::Or(left, right) => Ok(EvalValue::Bool(
            eval_row(left, table, record)?.truthy() || eval_row(right, table, record)?.truthy(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{SqlExpr, SqlOrder, SqlQuery, SqlSelect};
    use wtq_dcs::CompareOp;
    use wtq_table::samples;

    fn col(name: &str) -> SqlExpr {
        SqlExpr::Column(name.to_string())
    }

    fn lit(value: Value) -> SqlExpr {
        SqlExpr::Literal(value)
    }

    #[test]
    fn select_star_with_filter() {
        // SELECT * FROM T WHERE Country = 'Greece'
        let table = samples::olympics();
        let q = SqlQuery::select(SqlSelect::project(vec![]).with_filter(SqlExpr::Equals(
            Box::new(col("Country")),
            Box::new(lit(Value::str("Greece"))),
        )));
        let rows = execute(&q, &table).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][2], Value::str("Athens"));
    }

    #[test]
    fn example_3_2_city_of_minimum_year() {
        let table = samples::olympics();
        let min_year = SqlQuery::select(SqlSelect::project(vec![SqlExpr::Aggregate(
            AggregateOp::Min,
            Box::new(col("Year")),
        )]));
        let inner = SqlQuery::select(SqlSelect::project(vec![SqlExpr::Index]).with_filter(
            SqlExpr::Equals(
                Box::new(col("Year")),
                Box::new(SqlExpr::Scalar(Box::new(min_year))),
            ),
        ));
        let outer = SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
            SqlExpr::InSubquery(Box::new(SqlExpr::Index), Box::new(inner)),
        ));
        assert_eq!(
            execute(&outer, &table).unwrap(),
            vec![vec![Value::str("Athens")]]
        );
    }

    #[test]
    fn aggregate_projection_produces_one_row() {
        let table = samples::medals();
        let q = SqlQuery::select(SqlSelect::project(vec![SqlExpr::Aggregate(
            AggregateOp::Sum,
            Box::new(col("Gold")),
        )]));
        assert_eq!(execute(&q, &table).unwrap(), vec![vec![Value::num(298.0)]]);
    }

    #[test]
    fn count_of_filtered_rows() {
        let table = samples::olympics();
        let q = SqlQuery::select(
            SqlSelect::project(vec![SqlExpr::Aggregate(
                AggregateOp::Count,
                Box::new(SqlExpr::Index),
            )])
            .with_filter(SqlExpr::Equals(
                Box::new(col("City")),
                Box::new(lit(Value::str("Athens"))),
            )),
        );
        assert_eq!(execute(&q, &table).unwrap(), vec![vec![Value::num(2.0)]]);
    }

    #[test]
    fn comparison_and_conjunction() {
        let table = samples::squad();
        let q = SqlQuery::select(
            SqlSelect::project(vec![col("Name")]).with_filter(SqlExpr::And(
                Box::new(SqlExpr::Compare(
                    CompareOp::Gt,
                    Box::new(col("Games")),
                    Box::new(lit(Value::num(4.0))),
                )),
                Box::new(SqlExpr::Equals(
                    Box::new(col("Position")),
                    Box::new(lit(Value::str("MF"))),
                )),
            )),
        );
        let rows = execute(&q, &table).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn group_by_order_by_count_limit() {
        // SELECT Lake FROM T GROUP BY Lake ORDER BY COUNT(Index) DESC LIMIT 1
        let table = samples::shipwrecks();
        let select = SqlSelect {
            projection: vec![col("Lake")],
            distinct: false,
            filter: None,
            group_by: Some(col("Lake")),
            order_by: Some((
                SqlExpr::Aggregate(AggregateOp::Count, Box::new(SqlExpr::Index)),
                SqlOrder::Desc,
            )),
            limit: Some(1),
        };
        assert_eq!(
            execute(&SqlQuery::Select(select), &table).unwrap(),
            vec![vec![Value::str("Lake Huron")]]
        );
    }

    #[test]
    fn scalar_difference() {
        let table = samples::shipwrecks();
        let count_of = |lake: &str| {
            SqlQuery::select(
                SqlSelect::project(vec![SqlExpr::Aggregate(
                    AggregateOp::Count,
                    Box::new(SqlExpr::Index),
                )])
                .with_filter(SqlExpr::Equals(
                    Box::new(col("Lake")),
                    Box::new(lit(Value::str(lake))),
                )),
            )
        };
        let q = SqlQuery::ScalarDifference(
            Box::new(count_of("Lake Huron")),
            Box::new(count_of("Lake Erie")),
        );
        assert_eq!(execute(&q, &table).unwrap(), vec![vec![Value::num(3.0)]]);
    }

    #[test]
    fn union_deduplicates() {
        let table = samples::olympics();
        let cities =
            |country: &str| {
                SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
                    SqlExpr::Equals(Box::new(col("Country")), Box::new(lit(Value::str(country)))),
                ))
            };
        let q = SqlQuery::Union(Box::new(cities("Greece")), Box::new(cities("Greece")));
        let rows = execute(&q, &table).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::str("Athens"));
    }

    #[test]
    fn distinct_and_in_list() {
        let table = samples::olympics();
        let select = SqlSelect {
            projection: vec![col("Country")],
            distinct: true,
            filter: Some(SqlExpr::InList(
                Box::new(col("City")),
                vec![Value::str("Athens"), Value::str("London")],
            )),
            group_by: None,
            order_by: None,
            limit: None,
        };
        let rows = execute(&SqlQuery::Select(select), &table).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn errors_are_reported() {
        let table = samples::olympics();
        let q = SqlQuery::select(SqlSelect::project(vec![col("Continent")]));
        assert!(matches!(
            execute(&q, &table),
            Err(SqlError::UnknownColumn(_))
        ));

        // Scalar subquery with several rows.
        let many = SqlQuery::select(SqlSelect::project(vec![col("City")]));
        let q = SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
            SqlExpr::Equals(
                Box::new(col("City")),
                Box::new(SqlExpr::Scalar(Box::new(many))),
            ),
        ));
        assert!(matches!(
            execute(&q, &table),
            Err(SqlError::ScalarCardinality(_))
        ));
    }

    #[test]
    fn index_arithmetic_shifts_rows() {
        // SELECT City FROM T WHERE Index IN (SELECT Index - 1 FROM T WHERE City = 'London')
        let table = samples::olympics();
        let inner = SqlQuery::select(
            SqlSelect::project(vec![SqlExpr::Arith(
                ArithOp::Sub,
                Box::new(SqlExpr::Index),
                Box::new(lit(Value::num(1.0))),
            )])
            .with_filter(SqlExpr::Equals(
                Box::new(col("City")),
                Box::new(lit(Value::str("London"))),
            )),
        );
        let outer = SqlQuery::select(SqlSelect::project(vec![col("City")]).with_filter(
            SqlExpr::InSubquery(Box::new(SqlExpr::Index), Box::new(inner)),
        ));
        let rows = execute(&outer, &table).unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::str("St. Louis")], vec![Value::str("Beijing")]]
        );
    }
}
