//! Planner observability: counters of every `WHERE`-planning decision the
//! engine takes in [`PlanMode::Auto`][crate::PlanMode::Auto].
//!
//! The counters answer two operational questions:
//!
//! * **which path runs** — how often the planner fell back to a row scan,
//!   answered from the inverted index, or ran a columnar kernel sweep, and
//! * **how good the cost model is** — cumulative estimated vs actual
//!   matching rows for planned filters, so a drifting selectivity model
//!   shows up as a widening gap between the two sums.
//!
//! The counters live per engine in a [`PlannerCounters`] set: every
//! [`SqlEngine`][crate::SqlEngine] owns one (or shares one via
//! [`SqlEngine::with_counters`][crate::SqlEngine::with_counters]), so two
//! engines — or interleaved tests and benches — never bleed decision
//! counts into each other. They are plain relaxed atomics (one `fetch_add`
//! per planned filter, no contention-sensitive paths), snapshotted into a
//! serializable [`PlannerStats`] that the core engine embeds in its stats
//! surface and the server serves over the `Stats` wire endpoint. A
//! long-lived owner that wants an aggregate view keeps one shared set and
//! hands it to every engine it constructs.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// A point-in-time snapshot of the planner decision counters. Serializable
/// so stats endpoints can embed it directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannerStats {
    /// Filters that fell back to the per-row interpreted scan (predicate
    /// shape not plannable, or the table was empty / unindexed in a mode
    /// without kernels).
    pub scan_chosen: u64,
    /// Filters answered from the inverted / sorted-numeric index.
    pub index_chosen: u64,
    /// Filters answered by columnar kernel sweeps over the typed vectors.
    pub kernel_chosen: u64,
    /// Sum of the planner's estimated matching-row counts over all planned
    /// filters (bucket-size selectivity; half the table when planning cold
    /// without an index histogram).
    pub estimated_rows: u64,
    /// Sum of the actual matching-row counts of the same filters.
    pub actual_rows: u64,
}

/// One engine's planner decision counters. Records are relaxed atomics, so
/// a set can be shared across threads behind an `Arc` (the serving layer
/// keeps one per served engine and hands it to every per-request
/// [`SqlEngine`][crate::SqlEngine]).
#[derive(Debug, Default)]
pub struct PlannerCounters {
    scan_chosen: AtomicU64,
    index_chosen: AtomicU64,
    kernel_chosen: AtomicU64,
    estimated_rows: AtomicU64,
    actual_rows: AtomicU64,
}

impl PlannerCounters {
    /// A fresh all-zero set.
    pub fn new() -> PlannerCounters {
        PlannerCounters::default()
    }

    /// Snapshot this engine's counters.
    pub fn snapshot(&self) -> PlannerStats {
        PlannerStats {
            scan_chosen: self.scan_chosen.load(Ordering::Relaxed),
            index_chosen: self.index_chosen.load(Ordering::Relaxed),
            kernel_chosen: self.kernel_chosen.load(Ordering::Relaxed),
            estimated_rows: self.estimated_rows.load(Ordering::Relaxed),
            actual_rows: self.actual_rows.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn record_scan_chosen(&self) {
        self.scan_chosen.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_index_chosen(&self) {
        self.index_chosen.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_kernel_chosen(&self) {
        self.kernel_chosen.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_selectivity(&self, estimated: u64, actual: u64) {
        self.estimated_rows.fetch_add(estimated, Ordering::Relaxed);
        self.actual_rows.fetch_add(actual, Ordering::Relaxed);
    }
}
