//! SQL abstract syntax tree and pretty-printer.
//!
//! The AST covers exactly the fragment produced by the Table 10 translation:
//! single-table `SELECT` statements over the implicit table `T` with an
//! `Index` pseudo-attribute, scalar subqueries, `IN` subqueries, aggregates,
//! `UNION`, `GROUP BY` / `ORDER BY` / `LIMIT`, and arithmetic difference of
//! scalar subqueries.

use std::fmt;

use wtq_dcs::{AggregateOp, CompareOp};
use wtq_table::Value;

/// A SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// A named column of the implicit table `T`.
    Column(String),
    /// The record-index pseudo-attribute `Index`.
    Index,
    /// A literal value.
    Literal(Value),
    /// An aggregate over an expression, e.g. `MAX(Year)` or `COUNT(Index)`.
    Aggregate(AggregateOp, Box<SqlExpr>),
    /// Equality test `left = right`.
    Equals(Box<SqlExpr>, Box<SqlExpr>),
    /// Numeric comparison `left <op> right`.
    Compare(CompareOp, Box<SqlExpr>, Box<SqlExpr>),
    /// Membership in a subquery: `expr IN (SELECT ...)`.
    InSubquery(Box<SqlExpr>, Box<SqlQuery>),
    /// Membership in a literal list: `expr IN (v1, v2, ...)`.
    InList(Box<SqlExpr>, Vec<Value>),
    /// A scalar subquery used as a value: `(SELECT MAX(Year) FROM T)`.
    Scalar(Box<SqlQuery>),
    /// Arithmetic: `left + right` / `left - right`.
    Arith(ArithOp, Box<SqlExpr>, Box<SqlExpr>),
    /// Conjunction.
    And(Box<SqlExpr>, Box<SqlExpr>),
    /// Disjunction.
    Or(Box<SqlExpr>, Box<SqlExpr>),
}

/// Arithmetic operators appearing in the translation (`Index - 1`,
/// `Index + 1`, and the top-level difference of scalar subqueries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
}

impl ArithOp {
    fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
        }
    }
}

/// Sort direction for `ORDER BY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlOrder {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// A single `SELECT` statement over the implicit table `T`.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlSelect {
    /// Projected expressions (`SELECT *` when empty).
    pub projection: Vec<SqlExpr>,
    /// Whether to deduplicate output rows (`SELECT DISTINCT`).
    pub distinct: bool,
    /// `WHERE` clause.
    pub filter: Option<SqlExpr>,
    /// `GROUP BY` expression.
    pub group_by: Option<SqlExpr>,
    /// `ORDER BY` expression and direction.
    pub order_by: Option<(SqlExpr, SqlOrder)>,
    /// `LIMIT`.
    pub limit: Option<usize>,
}

impl SqlSelect {
    /// `SELECT <projection> FROM T` with no other clauses.
    pub fn project(projection: Vec<SqlExpr>) -> Self {
        SqlSelect {
            projection,
            distinct: false,
            filter: None,
            group_by: None,
            order_by: None,
            limit: None,
        }
    }

    /// Attach a `WHERE` clause.
    pub fn with_filter(mut self, filter: SqlExpr) -> Self {
        self.filter = Some(filter);
        self
    }
}

/// A SQL query: a `SELECT`, a `UNION` of queries, or an arithmetic difference
/// between two scalar queries (the top-level form of the `sub(...)`
/// translation in Table 10).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlQuery {
    /// A plain select.
    Select(SqlSelect),
    /// `query UNION query`.
    Union(Box<SqlQuery>, Box<SqlQuery>),
    /// `(scalar query) - (scalar query)`.
    ScalarDifference(Box<SqlQuery>, Box<SqlQuery>),
}

impl SqlQuery {
    /// Wrap a select.
    pub fn select(select: SqlSelect) -> Self {
        SqlQuery::Select(select)
    }

    /// Render as a single-line SQL string.
    pub fn to_sql(&self) -> String {
        self.to_string()
    }
}

fn escape_literal(value: &Value) -> String {
    match value {
        Value::Num(_) => value.to_string(),
        _ => format!("'{}'", value.to_string().replace('\'', "''")),
    }
}

fn quote_ident(name: &str) -> String {
    let simple = !name.is_empty()
        && name
            .chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false)
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if simple {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

impl fmt::Display for SqlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlExpr::Column(name) => write!(f, "{}", quote_ident(name)),
            SqlExpr::Index => write!(f, "Index"),
            SqlExpr::Literal(value) => write!(f, "{}", escape_literal(value)),
            SqlExpr::Aggregate(op, expr) => {
                write!(f, "{}({})", op.name().to_ascii_uppercase(), expr)
            }
            SqlExpr::Equals(left, right) => write!(f, "{left} = {right}"),
            SqlExpr::Compare(op, left, right) => {
                let symbol = if *op == CompareOp::Neq {
                    "<>"
                } else {
                    op.symbol()
                };
                write!(f, "{left} {symbol} {right}")
            }
            SqlExpr::InSubquery(expr, query) => write!(f, "{expr} IN ({query})"),
            SqlExpr::InList(expr, values) => {
                let list: Vec<String> = values.iter().map(escape_literal).collect();
                write!(f, "{expr} IN ({})", list.join(", "))
            }
            SqlExpr::Scalar(query) => write!(f, "({query})"),
            SqlExpr::Arith(op, left, right) => write!(f, "{left} {} {right}", op.symbol()),
            SqlExpr::And(left, right) => write!(f, "({left} AND {right})"),
            SqlExpr::Or(left, right) => write!(f, "({left} OR {right})"),
        }
    }
}

impl fmt::Display for SqlSelect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        if self.projection.is_empty() {
            write!(f, "*")?;
        } else {
            let cols: Vec<String> = self.projection.iter().map(|e| e.to_string()).collect();
            write!(f, "{}", cols.join(", "))?;
        }
        write!(f, " FROM T")?;
        if let Some(filter) = &self.filter {
            write!(f, " WHERE {filter}")?;
        }
        if let Some(group) = &self.group_by {
            write!(f, " GROUP BY {group}")?;
        }
        if let Some((expr, order)) = &self.order_by {
            let dir = match order {
                SqlOrder::Asc => "ASC",
                SqlOrder::Desc => "DESC",
            };
            write!(f, " ORDER BY {expr} {dir}")?;
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SqlQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlQuery::Select(select) => write!(f, "{select}"),
            SqlQuery::Union(left, right) => write!(f, "{left} UNION {right}"),
            SqlQuery::ScalarDifference(left, right) => write!(f, "({left}) - ({right})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_example_3_2() {
        // SELECT City FROM T WHERE Index IN (SELECT Index FROM T WHERE Year =
        // (SELECT MIN(Year) FROM T));
        let min_year = SqlQuery::select(SqlSelect::project(vec![SqlExpr::Aggregate(
            AggregateOp::Min,
            Box::new(SqlExpr::Column("Year".into())),
        )]));
        let inner = SqlQuery::select(SqlSelect::project(vec![SqlExpr::Index]).with_filter(
            SqlExpr::Equals(
                Box::new(SqlExpr::Column("Year".into())),
                Box::new(SqlExpr::Scalar(Box::new(min_year))),
            ),
        ));
        let outer = SqlQuery::select(
            SqlSelect::project(vec![SqlExpr::Column("City".into())]).with_filter(
                SqlExpr::InSubquery(Box::new(SqlExpr::Index), Box::new(inner)),
            ),
        );
        assert_eq!(
            outer.to_sql(),
            "SELECT City FROM T WHERE Index IN (SELECT Index FROM T WHERE Year = \
             (SELECT MIN(Year) FROM T))"
        );
    }

    #[test]
    fn quoting_of_identifiers_and_literals() {
        let q = SqlQuery::select(
            SqlSelect::project(vec![SqlExpr::Column("Open Cup".into())]).with_filter(
                SqlExpr::Equals(
                    Box::new(SqlExpr::Column("League".into())),
                    Box::new(SqlExpr::Literal(Value::str("USL A-League"))),
                ),
            ),
        );
        assert_eq!(
            q.to_sql(),
            "SELECT \"Open Cup\" FROM T WHERE League = 'USL A-League'"
        );
        let q = SqlQuery::select(SqlSelect::project(vec![SqlExpr::Literal(Value::str(
            "it's",
        ))]));
        assert!(q.to_sql().contains("'it''s'"));
    }

    #[test]
    fn renders_group_order_limit() {
        let select = SqlSelect {
            projection: vec![SqlExpr::Column("City".into())],
            distinct: true,
            filter: None,
            group_by: Some(SqlExpr::Column("City".into())),
            order_by: Some((
                SqlExpr::Aggregate(AggregateOp::Count, Box::new(SqlExpr::Index)),
                SqlOrder::Desc,
            )),
            limit: Some(1),
        };
        assert_eq!(
            SqlQuery::Select(select).to_sql(),
            "SELECT DISTINCT City FROM T GROUP BY City ORDER BY COUNT(Index) DESC LIMIT 1"
        );
    }

    #[test]
    fn renders_difference_and_union() {
        let a = SqlQuery::select(SqlSelect::project(vec![SqlExpr::Aggregate(
            AggregateOp::Count,
            Box::new(SqlExpr::Index),
        )]));
        let diff = SqlQuery::ScalarDifference(Box::new(a.clone()), Box::new(a.clone()));
        assert!(diff.to_sql().contains(") - ("));
        let union = SqlQuery::Union(Box::new(a.clone()), Box::new(a));
        assert!(union.to_sql().contains(" UNION "));
    }

    #[test]
    fn neq_renders_as_angle_brackets() {
        let expr = SqlExpr::Compare(
            CompareOp::Neq,
            Box::new(SqlExpr::Column("Games".into())),
            Box::new(SqlExpr::Literal(Value::num(3.0))),
        );
        assert_eq!(expr.to_string(), "Games <> 3");
    }
}
