//! Lambda DCS → SQL translation (the paper's Table 10).
//!
//! Record-denoting formulas translate to `SELECT Index FROM T WHERE …`
//! queries so they can be nested inside `Index IN (…)` membership tests;
//! value-denoting formulas translate to single-column selects; numeric
//! formulas translate to scalar aggregates or to the top-level difference of
//! two scalar queries. [`translate`] wraps a record-denoting formula in
//! `SELECT * FROM T WHERE Index IN (…)` to match the paper's presentation of
//! the *Column Records* operator.

use wtq_dcs::{AggregateOp, Formula, FormulaType};
use wtq_table::Value;

use crate::ast::{ArithOp, SqlExpr, SqlOrder, SqlQuery, SqlSelect};
use crate::error::SqlError;
use crate::Result;

/// Translate a lambda DCS formula into SQL.
///
/// The formula must be well-typed (see [`wtq_dcs::typecheck`]); ill-typed
/// formulas and the few compositions outside the Table 10 fragment produce
/// [`SqlError::Untranslatable`].
pub fn translate(formula: &Formula) -> Result<SqlQuery> {
    let formula_type = wtq_dcs::typecheck(formula)
        .map_err(|e| SqlError::Untranslatable(format!("ill-typed formula: {e}")))?;
    match formula_type {
        FormulaType::Records => {
            let records = translate_records(formula)?;
            Ok(SqlQuery::select(SqlSelect::project(vec![]).with_filter(
                SqlExpr::InSubquery(Box::new(SqlExpr::Index), Box::new(records)),
            )))
        }
        FormulaType::Values => translate_values(formula),
        FormulaType::Number => translate_number(formula),
    }
}

/// Translate a record-denoting formula to a `SELECT Index FROM T …` query.
fn translate_records(formula: &Formula) -> Result<SqlQuery> {
    let index_select = |filter: SqlExpr| {
        SqlQuery::select(SqlSelect::project(vec![SqlExpr::Index]).with_filter(filter))
    };
    match formula {
        Formula::AllRecords => Ok(SqlQuery::select(SqlSelect::project(vec![SqlExpr::Index]))),
        Formula::Join { column, values } => {
            let filter = match constant_values(values) {
                Some(list) if list.len() == 1 => SqlExpr::Equals(
                    Box::new(SqlExpr::Column(column.clone())),
                    Box::new(SqlExpr::Literal(list[0].clone())),
                ),
                Some(list) => SqlExpr::InList(Box::new(SqlExpr::Column(column.clone())), list),
                None => SqlExpr::InSubquery(
                    Box::new(SqlExpr::Column(column.clone())),
                    Box::new(translate_values(values)?),
                ),
            };
            Ok(index_select(filter))
        }
        Formula::CompareJoin { column, op, value } => {
            let right = match constant_values(value) {
                Some(list) if list.len() == 1 => SqlExpr::Literal(list[0].clone()),
                _ => SqlExpr::Scalar(Box::new(translate_number_or_values(value)?)),
            };
            Ok(index_select(SqlExpr::Compare(
                *op,
                Box::new(SqlExpr::Column(column.clone())),
                Box::new(right),
            )))
        }
        Formula::Prev(records) => {
            // SELECT Index - 1 FROM T WHERE Index IN (records)
            let inner = translate_records(records)?;
            Ok(SqlQuery::select(
                SqlSelect::project(vec![SqlExpr::Arith(
                    ArithOp::Sub,
                    Box::new(SqlExpr::Index),
                    Box::new(SqlExpr::Literal(Value::num(1.0))),
                )])
                .with_filter(SqlExpr::InSubquery(
                    Box::new(SqlExpr::Index),
                    Box::new(inner),
                )),
            ))
        }
        Formula::Next(records) => {
            let inner = translate_records(records)?;
            Ok(SqlQuery::select(
                SqlSelect::project(vec![SqlExpr::Arith(
                    ArithOp::Add,
                    Box::new(SqlExpr::Index),
                    Box::new(SqlExpr::Literal(Value::num(1.0))),
                )])
                .with_filter(SqlExpr::InSubquery(
                    Box::new(SqlExpr::Index),
                    Box::new(inner),
                )),
            ))
        }
        Formula::Intersect(a, b) => {
            let left = translate_records(a)?;
            let right = translate_records(b)?;
            Ok(index_select(SqlExpr::And(
                Box::new(SqlExpr::InSubquery(
                    Box::new(SqlExpr::Index),
                    Box::new(left),
                )),
                Box::new(SqlExpr::InSubquery(
                    Box::new(SqlExpr::Index),
                    Box::new(right),
                )),
            )))
        }
        Formula::Union(a, b) => Ok(SqlQuery::Union(
            Box::new(translate_records(a)?),
            Box::new(translate_records(b)?),
        )),
        Formula::SuperlativeRecords {
            op,
            records,
            column,
        } => {
            // SELECT Index FROM T WHERE Index IN (records)
            //   AND C = (SELECT MAX(C) FROM T WHERE Index IN (records))
            let agg = match op {
                wtq_dcs::SuperlativeOp::Argmax => AggregateOp::Max,
                wtq_dcs::SuperlativeOp::Argmin => AggregateOp::Min,
            };
            let inner = translate_records(records)?;
            let best = SqlQuery::select(
                SqlSelect::project(vec![SqlExpr::Aggregate(
                    agg,
                    Box::new(SqlExpr::Column(column.clone())),
                )])
                .with_filter(SqlExpr::InSubquery(
                    Box::new(SqlExpr::Index),
                    Box::new(inner.clone()),
                )),
            );
            Ok(index_select(SqlExpr::And(
                Box::new(SqlExpr::InSubquery(
                    Box::new(SqlExpr::Index),
                    Box::new(inner),
                )),
                Box::new(SqlExpr::Equals(
                    Box::new(SqlExpr::Column(column.clone())),
                    Box::new(SqlExpr::Scalar(Box::new(best))),
                )),
            )))
        }
        Formula::RecordIndexSuperlative { op, records } => {
            let agg = match op {
                wtq_dcs::SuperlativeOp::Argmax => AggregateOp::Max,
                wtq_dcs::SuperlativeOp::Argmin => AggregateOp::Min,
            };
            let inner = translate_records(records)?;
            let best = SqlQuery::select(
                SqlSelect::project(vec![SqlExpr::Aggregate(agg, Box::new(SqlExpr::Index))])
                    .with_filter(SqlExpr::InSubquery(
                        Box::new(SqlExpr::Index),
                        Box::new(inner),
                    )),
            );
            Ok(index_select(SqlExpr::Equals(
                Box::new(SqlExpr::Index),
                Box::new(SqlExpr::Scalar(Box::new(best))),
            )))
        }
        other => Err(SqlError::Untranslatable(format!(
            "formula does not denote records: {other}"
        ))),
    }
}

/// Translate a value-denoting formula to a single-column select.
fn translate_values(formula: &Formula) -> Result<SqlQuery> {
    match formula {
        Formula::Const(value) => {
            // A standalone constant: one row holding the literal.
            Ok(SqlQuery::Select(SqlSelect {
                projection: vec![SqlExpr::Literal(value.clone())],
                distinct: true,
                filter: None,
                group_by: None,
                order_by: None,
                limit: Some(1),
            }))
        }
        Formula::ColumnValues { column, records } => {
            let select = match records.as_ref() {
                Formula::AllRecords => SqlSelect::project(vec![SqlExpr::Column(column.clone())]),
                other => SqlSelect::project(vec![SqlExpr::Column(column.clone())]).with_filter(
                    SqlExpr::InSubquery(
                        Box::new(SqlExpr::Index),
                        Box::new(translate_records(other)?),
                    ),
                ),
            };
            Ok(SqlQuery::Select(select))
        }
        Formula::Union(a, b) => Ok(SqlQuery::Union(
            Box::new(translate_values(a)?),
            Box::new(translate_values(b)?),
        )),
        Formula::MostCommonValue { op, values, column } => {
            // SELECT C FROM T WHERE C IN (vals)
            //   GROUP BY C ORDER BY COUNT(Index) DESC LIMIT 1
            let order = match op {
                wtq_dcs::SuperlativeOp::Argmax => SqlOrder::Desc,
                wtq_dcs::SuperlativeOp::Argmin => SqlOrder::Asc,
            };
            let filter = membership_filter(column, values)?;
            Ok(SqlQuery::Select(SqlSelect {
                projection: vec![SqlExpr::Column(column.clone())],
                distinct: false,
                filter: Some(filter),
                group_by: Some(SqlExpr::Column(column.clone())),
                order_by: Some((
                    SqlExpr::Aggregate(AggregateOp::Count, Box::new(SqlExpr::Index)),
                    order,
                )),
                limit: Some(1),
            }))
        }
        Formula::CompareValues {
            op,
            values,
            key_column,
            value_column,
        } => {
            // SELECT DISTINCT C2 FROM T WHERE C2 IN (vals)
            //   AND C1 = (SELECT MAX(C1) FROM T WHERE C2 IN (vals))
            let agg = match op {
                wtq_dcs::SuperlativeOp::Argmax => AggregateOp::Max,
                wtq_dcs::SuperlativeOp::Argmin => AggregateOp::Min,
            };
            let membership = membership_filter(value_column, values)?;
            let best = SqlQuery::select(
                SqlSelect::project(vec![SqlExpr::Aggregate(
                    agg,
                    Box::new(SqlExpr::Column(key_column.clone())),
                )])
                .with_filter(membership.clone()),
            );
            Ok(SqlQuery::Select(SqlSelect {
                projection: vec![SqlExpr::Column(value_column.clone())],
                distinct: true,
                filter: Some(SqlExpr::And(
                    Box::new(membership),
                    Box::new(SqlExpr::Equals(
                        Box::new(SqlExpr::Column(key_column.clone())),
                        Box::new(SqlExpr::Scalar(Box::new(best))),
                    )),
                )),
                group_by: None,
                order_by: None,
                limit: None,
            }))
        }
        other => Err(SqlError::Untranslatable(format!(
            "value-denoting formula outside the Table 10 fragment: {other}"
        ))),
    }
}

/// Translate a numeric formula (aggregate or difference).
fn translate_number(formula: &Formula) -> Result<SqlQuery> {
    match formula {
        Formula::Aggregate { op, sub } => {
            match wtq_dcs::typecheck(sub).map_err(|e| SqlError::Untranslatable(e.to_string()))? {
                FormulaType::Records => {
                    // COUNT over records: SELECT COUNT(Index) FROM T WHERE Index IN (...)
                    if *op != AggregateOp::Count {
                        return Err(SqlError::Untranslatable(format!(
                            "{} over records has no SQL translation",
                            op.name()
                        )));
                    }
                    let inner = translate_records(sub)?;
                    Ok(SqlQuery::select(
                        SqlSelect::project(vec![SqlExpr::Aggregate(
                            AggregateOp::Count,
                            Box::new(SqlExpr::Index),
                        )])
                        .with_filter(SqlExpr::InSubquery(
                            Box::new(SqlExpr::Index),
                            Box::new(inner),
                        )),
                    ))
                }
                _ => {
                    // Aggregate over a projected column: push the aggregate
                    // into the projection of the value query.
                    let Formula::ColumnValues { column, records } = sub.as_ref() else {
                        return Err(SqlError::Untranslatable(format!(
                            "aggregation over {sub} is outside the Table 10 fragment"
                        )));
                    };
                    let projection = vec![SqlExpr::Aggregate(
                        *op,
                        Box::new(SqlExpr::Column(column.clone())),
                    )];
                    let select = match records.as_ref() {
                        Formula::AllRecords => SqlSelect::project(projection),
                        other => SqlSelect::project(projection).with_filter(SqlExpr::InSubquery(
                            Box::new(SqlExpr::Index),
                            Box::new(translate_records(other)?),
                        )),
                    };
                    Ok(SqlQuery::Select(select))
                }
            }
        }
        Formula::Sub(a, b) => Ok(SqlQuery::ScalarDifference(
            Box::new(translate_number_or_values(a)?),
            Box::new(translate_number_or_values(b)?),
        )),
        other => Err(SqlError::Untranslatable(format!(
            "numeric formula outside the Table 10 fragment: {other}"
        ))),
    }
}

/// Translate a formula expected to produce a scalar: either numeric or a
/// value query whose result happens to be a single row.
fn translate_number_or_values(formula: &Formula) -> Result<SqlQuery> {
    match wtq_dcs::typecheck(formula).map_err(|e| SqlError::Untranslatable(e.to_string()))? {
        FormulaType::Number => translate_number(formula),
        FormulaType::Values => translate_values(formula),
        FormulaType::Records => Err(SqlError::Untranslatable(
            "a record set cannot be used as a scalar".into(),
        )),
    }
}

/// Build a `column IN (…)` / `column = v` filter for a value formula.
fn membership_filter(column: &str, values: &Formula) -> Result<SqlExpr> {
    Ok(match constant_values(values) {
        Some(list) if list.len() == 1 => SqlExpr::Equals(
            Box::new(SqlExpr::Column(column.to_string())),
            Box::new(SqlExpr::Literal(list[0].clone())),
        ),
        Some(list) => SqlExpr::InList(Box::new(SqlExpr::Column(column.to_string())), list),
        None => SqlExpr::InSubquery(
            Box::new(SqlExpr::Column(column.to_string())),
            Box::new(translate_values(values)?),
        ),
    })
}

/// If the formula is a constant or a union of constants, return its values.
fn constant_values(formula: &Formula) -> Option<Vec<Value>> {
    match formula {
        Formula::Const(value) => Some(vec![value.clone()]),
        Formula::Union(a, b) => {
            let mut left = constant_values(a)?;
            let right = constant_values(b)?;
            left.extend(right);
            Some(left)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{PlanMode, SqlEngine};
    use crate::{Result, SqlQuery, SqlResult};
    use wtq_dcs::{eval, parse_formula, Answer};
    use wtq_table::{samples, Table};

    fn execute(query: &SqlQuery, table: &Table) -> Result<SqlResult> {
        SqlEngine::new(table).execute(query, PlanMode::Auto)
    }

    /// Execute both the lambda DCS formula and its SQL translation and assert
    /// they produce the same canonical answer.
    fn assert_cross_validates(text: &str, table: &Table) {
        let formula = parse_formula(text).unwrap_or_else(|e| panic!("parse {text:?}: {e}"));
        let dcs_answer = Answer::from_denotation(
            &eval(&formula, table).unwrap_or_else(|e| panic!("eval {text:?}: {e}")),
        );
        let sql = translate(&formula).unwrap_or_else(|e| panic!("translate {text:?}: {e}"));
        let rows = execute(&sql, table).unwrap_or_else(|e| panic!("execute {}: {e}", sql.to_sql()));
        let sql_answer = if rows.len() == 1 && rows[0].len() == 1 {
            Answer::values([rows[0][0].clone()])
        } else {
            Answer::values(rows.iter().filter_map(|row| row.first().cloned()))
        };
        assert_eq!(
            dcs_answer,
            sql_answer,
            "lambda DCS and SQL disagree for {text:?}\n  sql: {}",
            sql.to_sql()
        );
    }

    #[test]
    fn cross_validates_value_and_numeric_operators() {
        let olympics = samples::olympics();
        for text in [
            "R[Year].Country.Greece",
            "R[City].Country.Greece",
            "max(R[Year].Country.Greece)",
            "min(R[Year].Rows)",
            "count(City.Athens)",
            "sum(R[Year].Country.Greece)",
            "avg(R[Year].Country.UK)",
            "R[City].argmin(Rows, Year)",
            "R[Year].Prev.City.London",
            "R[City].R[Prev].City.Athens",
            "R[City].(Country.Greece or Country.China)",
            "R[City].(City.London and Country.UK)",
            "R[Year].last(Country.Greece)",
            "R[Year].first(Country.UK)",
            "R[City].Year.(> 2004)",
            "compare_max((London or Beijing), Year, City)",
            "compare_min((London or Beijing), Year, City)",
            "most_common((Athens or Paris), City)",
            "sub(max(R[Year].Rows), min(R[Year].Rows))",
        ] {
            assert_cross_validates(text, &olympics);
        }
    }

    #[test]
    fn cross_validates_on_other_sample_tables() {
        let medals = samples::medals();
        for text in [
            "sub(R[Total].Nation.Fiji, R[Total].Nation.Tonga)",
            "R[Nation].argmin(Rows, Total)",
            "sum(R[Gold].Rows)",
            "count(Gold.(> 40))",
        ] {
            assert_cross_validates(text, &medals);
        }
        let wrecks = samples::shipwrecks();
        for text in [
            "sub(count(Lake.\"Lake Huron\"), count(Lake.\"Lake Erie\"))",
            "most_common(R[Lake].Rows, Lake)",
            "count((Lake.\"Lake Huron\" and Vessel.Steamer))",
        ] {
            assert_cross_validates(text, &wrecks);
        }
        let league = samples::usl_league();
        for text in [
            "max(R[Year].League.\"USL A-League\")",
            "R[Year].last(League.\"USL A-League\")",
            "min(R[Attendance].Rows)",
        ] {
            assert_cross_validates(text, &league);
        }
    }

    #[test]
    fn record_formulas_translate_to_select_star() {
        let q = translate(&parse_formula("Country.Greece").unwrap()).unwrap();
        let sql = q.to_sql();
        assert!(sql.starts_with("SELECT * FROM T WHERE Index IN"));
        assert!(sql.contains("Country = 'Greece'"));
        let rows = execute(&q, &samples::olympics()).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn table_10_shapes_are_recognizable() {
        // Difference of values renders as the difference of two scalar selects.
        let q =
            translate(&parse_formula("sub(R[Total].Nation.Fiji, R[Total].Nation.Tonga)").unwrap())
                .unwrap();
        assert!(q.to_sql().contains(") - ("));
        // Most common value renders with GROUP BY / ORDER BY / LIMIT.
        let q =
            translate(&parse_formula("most_common((Athens or London), City)").unwrap()).unwrap();
        let sql = q.to_sql();
        assert!(sql.contains("GROUP BY"));
        assert!(sql.contains("ORDER BY COUNT(Index) DESC"));
        assert!(sql.contains("LIMIT 1"));
        // Superlative uses a scalar MAX subquery.
        let q = translate(&parse_formula("argmax(Rows, Year)").unwrap()).unwrap();
        assert!(q.to_sql().contains("MAX(Year)"));
    }

    #[test]
    fn untranslatable_fragments_are_reported() {
        // sum over records is ill-typed and therefore untranslatable.
        let formula = Formula::Aggregate {
            op: AggregateOp::Sum,
            sub: Box::new(Formula::AllRecords),
        };
        assert!(matches!(
            translate(&formula),
            Err(SqlError::Untranslatable(_))
        ));
        // Aggregating a union of projections is outside the fragment.
        let formula = parse_formula("max((R[Year].Rows or R[Total].Rows))").unwrap();
        assert!(matches!(
            translate(&formula),
            Err(SqlError::Untranslatable(_))
        ));
    }

    #[test]
    fn standalone_constant_translates_to_literal_row() {
        let q = translate(&parse_formula("Greece").unwrap()).unwrap();
        let rows = execute(&q, &samples::olympics()).unwrap();
        assert_eq!(rows, vec![vec![Value::str("Greece")]]);
    }
}
