//! Error type for SQL translation and execution.

use std::fmt;

/// Errors produced while translating lambda DCS to SQL or executing SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// A column referenced by the query does not exist in the table.
    UnknownColumn(String),
    /// A scalar subquery returned a number of rows other than one.
    ScalarCardinality(usize),
    /// An expression was used in a context expecting a different kind
    /// (e.g. a non-numeric value in arithmetic).
    Type(String),
    /// The lambda DCS formula has no SQL translation in the supported
    /// fragment (should not happen for formulas built from Table 10).
    Untranslatable(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::UnknownColumn(name) => write!(f, "unknown column {name:?}"),
            SqlError::ScalarCardinality(n) => {
                write!(f, "scalar subquery returned {n} rows (expected exactly 1)")
            }
            SqlError::Type(msg) => write!(f, "type error: {msg}"),
            SqlError::Untranslatable(msg) => write!(f, "no SQL translation: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SqlError::UnknownColumn("Lake".into())
            .to_string()
            .contains("Lake"));
        assert!(SqlError::ScalarCardinality(3).to_string().contains('3'));
        assert!(SqlError::Type("boom".into()).to_string().contains("boom"));
    }
}
