//! Feedback collection and retraining (§6.2, §7.3, Table 9).
//!
//! At deployment, user choices double as annotations: a question whose
//! correct query was identified by the workers becomes a question–query
//! training pair. The paper collects each annotation from three distinct
//! workers and keeps only queries marked correct by at least two of them,
//! then retrains the semantic parser with the split objective of Eq. 8 and
//! measures the correctness / MRR gain on a held-out development set — once
//! training on the annotated examples alone, and once mixing them into the
//! full weakly-supervised training set.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wtq_dcs::Formula;
use wtq_parser::{
    formulas_equivalent, train::evaluate, SemanticParser, TrainConfig, TrainExample, Trainer,
};
use wtq_table::Catalog;

use crate::deploy::StudyExample;
use crate::user::{SimulatedUser, UserDecision};

/// Collect question–query annotations by showing each question's top-k
/// candidates to `annotators` simulated users and keeping candidates marked
/// correct by at least `agreement` of them.
///
/// The argument list mirrors the paper's §7.3 annotation protocol knobs
/// one-to-one, which is worth more than packing them into a config struct.
#[allow(clippy::too_many_arguments)]
pub fn collect_annotations(
    parser: &SemanticParser,
    examples: &[StudyExample],
    catalog: &Catalog,
    top_k: usize,
    annotators: usize,
    agreement: usize,
    user: &SimulatedUser,
    seed: u64,
) -> Vec<(TrainExample, Formula)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut annotated = Vec::new();
    for example in examples {
        let Some(table) = catalog.get(&example.table) else {
            continue;
        };
        let candidates = parser.parse_top_k(&example.question, table, top_k);
        if candidates.is_empty() {
            continue;
        }
        let formulas: Vec<Formula> = candidates.iter().map(|c| c.formula.clone()).collect();
        // Tally how many annotators marked each candidate correct.
        let mut votes = vec![0usize; formulas.len()];
        for _ in 0..annotators {
            let mut display: Vec<usize> = (0..formulas.len()).collect();
            display.shuffle(&mut rng);
            let displayed: Vec<Formula> = display.iter().map(|&i| formulas[i].clone()).collect();
            if let UserDecision::Selected(index) =
                user.choose(&displayed, Some(&example.gold), &mut rng)
            {
                votes[display[index]] += 1;
            }
        }
        let approved: Vec<Formula> = formulas
            .iter()
            .zip(&votes)
            .filter(|(_, &v)| v >= agreement)
            .map(|(f, _)| f.clone())
            .collect();
        if approved.is_empty() {
            continue;
        }
        let train_example = TrainExample::weak(
            example.question.clone(),
            example.table.clone(),
            example.answer.clone(),
        )
        .with_annotations(approved);
        annotated.push((train_example, example.gold.clone()));
    }
    annotated
}

/// One row of Table 9.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackResult {
    /// Number of (weak) training examples used.
    pub train_examples: usize,
    /// Number of annotated examples among them.
    pub annotations: usize,
    /// Development-set correctness after training.
    pub correctness: f64,
    /// Development-set MRR after training.
    pub mrr: f64,
}

/// The Table 9 experiment: train with and without annotations at two
/// training-set scales and compare development correctness / MRR.
#[derive(Debug, Clone)]
pub struct FeedbackExperiment {
    /// Parser training hyper-parameters.
    pub train_config: TrainConfig,
    /// Top-k shown during annotation collection.
    pub top_k: usize,
}

impl Default for FeedbackExperiment {
    fn default() -> Self {
        FeedbackExperiment {
            train_config: TrainConfig::default(),
            top_k: 7,
        }
    }
}

impl FeedbackExperiment {
    /// Train a fresh parser on `examples` (annotated or not) and evaluate it
    /// on `dev`.
    pub fn train_and_evaluate(
        &self,
        examples: &[(TrainExample, Formula)],
        dev: &[(TrainExample, Formula)],
        catalog: &Catalog,
        use_annotations: bool,
    ) -> FeedbackResult {
        let mut parser = SemanticParser::untrained();
        let train_examples: Vec<TrainExample> = examples
            .iter()
            .map(|(example, _)| {
                if use_annotations {
                    example.clone()
                } else {
                    // Strip annotations: pure weak supervision.
                    TrainExample::weak(
                        example.question.clone(),
                        example.table.clone(),
                        example.answer.clone(),
                    )
                }
            })
            .collect();
        let mut trainer = Trainer::new(self.train_config.clone());
        trainer.train(&mut parser, &train_examples, catalog);
        let evaluation = evaluate(
            &parser,
            dev.iter().map(|(example, gold)| (example, gold.clone())),
            catalog,
            self.top_k,
        );
        FeedbackResult {
            train_examples: examples.len(),
            annotations: if use_annotations {
                examples.iter().filter(|(e, _)| e.is_annotated()).count()
            } else {
                0
            },
            correctness: evaluation.correctness,
            mrr: evaluation.mrr,
        }
    }

    /// Fraction of collected annotations that contain the gold query — the
    /// annotation quality the 2-of-3 agreement rule buys (§7.3 reports that
    /// feedback collected this way is high-quality training input).
    pub fn annotation_precision(annotated: &[(TrainExample, Formula)]) -> f64 {
        if annotated.is_empty() {
            return 0.0;
        }
        let correct = annotated
            .iter()
            .filter(|(example, gold)| {
                example
                    .annotations
                    .iter()
                    .any(|a| formulas_equivalent(a, gold))
            })
            .count();
        correct as f64 / annotated.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::study_examples_from;
    use wtq_dataset::{Dataset, Split};

    fn dataset() -> Dataset {
        let config = wtq_dataset::dataset::DatasetConfig {
            // Big enough that the with/without-annotation comparison below is
            // measured on a full 30-question dev set rather than whatever a
            // small split happens to leave over.
            num_tables: 20,
            questions_per_table: 7,
            test_fraction: 0.3,
        };
        Dataset::generate(&config, &mut ChaCha8Rng::seed_from_u64(101))
    }

    #[test]
    fn majority_vote_annotations_are_high_precision() {
        let dataset = dataset();
        let catalog = dataset.catalog();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let examples = study_examples_from(&dataset, Split::Train, 40, &mut rng);
        let parser = SemanticParser::with_prior();
        let annotated = collect_annotations(
            &parser,
            &examples,
            &catalog,
            7,
            3,
            2,
            &SimulatedUser::average(),
            11,
        );
        assert!(
            annotated.len() >= examples.len() / 4,
            "too few annotations collected: {} of {}",
            annotated.len(),
            examples.len()
        );
        let precision = FeedbackExperiment::annotation_precision(&annotated);
        assert!(precision >= 0.7, "annotation precision {precision} too low");
        for (example, _) in &annotated {
            assert!(example.is_annotated());
        }
    }

    #[test]
    fn training_on_annotations_does_not_hurt_and_usually_helps() {
        // The Table 9 shape: with-annotations correctness >= without, on the
        // same training questions and dev set.
        let dataset = dataset();
        let catalog = dataset.catalog();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let train_pool = study_examples_from(&dataset, Split::Train, 60, &mut rng);
        let dev_pool = study_examples_from(&dataset, Split::Test, 30, &mut rng);
        let parser = SemanticParser::with_prior();
        let annotated = collect_annotations(
            &parser,
            &train_pool,
            &catalog,
            7,
            3,
            2,
            &SimulatedUser::average(),
            13,
        );
        assert!(annotated.len() >= 10);
        let dev: Vec<(TrainExample, Formula)> = dev_pool
            .iter()
            .map(|e| {
                (
                    TrainExample::weak(e.question.clone(), e.table.clone(), e.answer.clone()),
                    e.gold.clone(),
                )
            })
            .collect();
        let experiment = FeedbackExperiment {
            train_config: TrainConfig {
                epochs: 2,
                ..TrainConfig::default()
            },
            top_k: 7,
        };
        let with = experiment.train_and_evaluate(&annotated, &dev, &catalog, true);
        let without = experiment.train_and_evaluate(&annotated, &dev, &catalog, false);
        assert_eq!(with.train_examples, without.train_examples);
        assert!(with.annotations > 0);
        assert_eq!(without.annotations, 0);
        assert!(
            with.correctness + 0.05 >= without.correctness,
            "annotated training fell well below weak supervision ({} vs {})",
            with.correctness,
            without.correctness
        );
    }

    #[test]
    fn annotation_precision_of_empty_set_is_zero() {
        assert_eq!(FeedbackExperiment::annotation_precision(&[]), 0.0);
    }
}
