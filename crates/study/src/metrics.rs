//! Statistical helpers: the χ² test used for Table 6.
//!
//! The paper marks user and hybrid correctness as significantly better than
//! the parser baseline at the 0.01 level using a χ² test with one degree of
//! freedom; this module provides that test for 2×2 contingency tables of
//! (correct, incorrect) counts.

/// χ² critical value for 1 degree of freedom at the 0.01 level.
pub const CHI_SQUARE_CRITICAL_0_01: f64 = 6.635;

/// χ² critical value for 1 degree of freedom at the 0.05 level.
pub const CHI_SQUARE_CRITICAL_0_05: f64 = 3.841;

/// Pearson's χ² statistic for a 2×2 table comparing two systems' success
/// counts out of their totals. Returns `(statistic, significant_at_0.01)`.
pub fn chi_square_2x2(
    successes_a: usize,
    total_a: usize,
    successes_b: usize,
    total_b: usize,
) -> (f64, bool) {
    let a = successes_a as f64;
    let b = (total_a - successes_a) as f64;
    let c = successes_b as f64;
    let d = (total_b - successes_b) as f64;
    let n = a + b + c + d;
    if n == 0.0 {
        return (0.0, false);
    }
    let denominator = (a + b) * (c + d) * (a + c) * (b + d);
    if denominator == 0.0 {
        return (0.0, false);
    }
    let statistic = n * (a * d - b * c).powi(2) / denominator;
    (statistic, statistic >= CHI_SQUARE_CRITICAL_0_01)
}

/// Mean of a slice (0.0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Median of a slice (0.0 for empty input).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_proportions_are_not_significant() {
        let (statistic, significant) = chi_square_2x2(50, 100, 50, 100);
        assert!(statistic.abs() < 1e-9);
        assert!(!significant);
    }

    #[test]
    fn paper_scale_difference_is_significant() {
        // Roughly the Table 6 comparison: 260/700 vs 341/700.
        let (statistic, significant) = chi_square_2x2(341, 700, 260, 700);
        assert!(
            statistic > CHI_SQUARE_CRITICAL_0_01,
            "statistic {statistic}"
        );
        assert!(significant);
    }

    #[test]
    fn small_differences_on_small_samples_are_not() {
        let (_, significant) = chi_square_2x2(11, 20, 9, 20);
        assert!(!significant);
    }

    #[test]
    fn degenerate_tables_do_not_panic() {
        assert_eq!(chi_square_2x2(0, 0, 0, 0), (0.0, false));
        assert_eq!(chi_square_2x2(5, 5, 5, 5), (0.0, false));
    }

    #[test]
    fn mean_and_median() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[1.0, 9.0, 2.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }
}
