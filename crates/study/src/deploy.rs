//! The interactive deployment experiment (§6.3, §7.2).
//!
//! For every test question the parser's top-k candidates are explained to a
//! simulated user, who either selects the candidate they believe correct or
//! marks *None*. Three correctness numbers are compared, exactly as in
//! Table 6:
//!
//! * **parser correctness** — the top-ranked candidate is a correct
//!   translation,
//! * **user correctness** — the candidate selected by the user is correct,
//! * **hybrid correctness** — the user's selection when they made one, the
//!   parser's top candidate otherwise,
//!
//! together with the **correctness bound** (a correct candidate exists in the
//! top-k at all) and the per-question success rate of Table 4. The
//! [`coverage_sweep`] reproduces the §7.2 analysis of k = 7 vs k = 14.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wtq_dcs::{Answer, Formula};
use wtq_parser::{formulas_equivalent, Candidate, SemanticParser};
use wtq_table::{Catalog, IndexCache};

use crate::user::{SimulatedUser, UserDecision};

/// A test question with its gold query, as used by the study.
#[derive(Debug, Clone)]
pub struct StudyExample {
    /// The natural-language question.
    pub question: String,
    /// Name of the table the question is about.
    pub table: String,
    /// The gold (correct-translation) query.
    pub gold: Formula,
    /// The gold answer.
    pub answer: Answer,
}

/// Aggregate results of one deployment run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeploymentResult {
    /// Number of questions evaluated.
    pub questions: usize,
    /// Total number of candidate explanations shown to users.
    pub explanations_shown: usize,
    /// Fraction of questions whose top-ranked candidate was correct.
    pub parser_correctness: f64,
    /// Fraction of questions where the user selected a correct candidate.
    pub user_correctness: f64,
    /// Fraction of questions answered correctly by the hybrid policy.
    pub hybrid_correctness: f64,
    /// Fraction of questions with a correct candidate in the top-k.
    pub bound: f64,
    /// Mean reciprocal rank of the first correct candidate.
    pub mrr: f64,
    /// Table 4 success rate: correct selection, or None when warranted.
    pub user_success_rate: f64,
    /// Raw counts (correct questions) for significance testing.
    pub parser_correct_count: usize,
    /// Raw count of user-correct questions.
    pub user_correct_count: usize,
    /// Raw count of hybrid-correct questions.
    pub hybrid_correct_count: usize,
}

/// The deployment experiment driver.
#[derive(Debug, Clone)]
pub struct DeploymentExperiment {
    /// Number of candidates displayed to the user (the paper uses k = 7).
    pub top_k: usize,
    /// Whether candidates are shown in random order (the paper randomizes to
    /// avoid biasing workers toward the parser's top choice).
    pub shuffle_display: bool,
    /// Worker threads for the parsing phase. Parsing is read-only and
    /// rng-free, so it fans out over a pool; the simulated-user phase stays
    /// sequential, consuming the seeded RNG in example order — results are
    /// byte-identical for every worker count.
    pub workers: usize,
}

impl Default for DeploymentExperiment {
    fn default() -> Self {
        DeploymentExperiment {
            top_k: 7,
            shuffle_display: true,
            workers: wtq_runtime::default_workers(),
        }
    }
}

/// Parse every example's candidates in parallel over a shared index cache
/// (`None` where the catalog has no such table). Pure with respect to the
/// experiment RNG, so the fan-out cannot perturb downstream sampling.
fn parse_examples(
    parser: &SemanticParser,
    examples: &[StudyExample],
    catalog: &Catalog,
    workers: usize,
) -> Vec<Option<Vec<Candidate>>> {
    let indexes = IndexCache::new();
    wtq_runtime::run_batch(workers, examples.iter().collect(), |_, example| {
        let table = catalog.get(&example.table)?;
        let index = indexes.get_or_build(table);
        Some(parser.parse_with_index(&example.question, table, index))
    })
}

impl DeploymentExperiment {
    /// Run the experiment over `examples` with one simulated user profile.
    pub fn run(
        &self,
        parser: &SemanticParser,
        examples: &[StudyExample],
        catalog: &Catalog,
        user: &SimulatedUser,
        seed: u64,
    ) -> DeploymentResult {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut result = DeploymentResult::default();
        let mut reciprocal_ranks = 0.0;
        // Phase 1 (parallel): parse every question. Phase 2 (sequential):
        // replay the simulated users in example order with the seeded RNG.
        let parsed = parse_examples(parser, examples, catalog, self.workers);
        for (example, candidates) in examples.iter().zip(parsed) {
            let Some(candidates) = candidates else {
                continue;
            };
            result.questions += 1;
            let ranked_correct = candidates
                .iter()
                .position(|c| formulas_equivalent(&c.formula, &example.gold));
            if let Some(rank) = ranked_correct {
                reciprocal_ranks += 1.0 / (rank as f64 + 1.0);
            }
            let top: Vec<&Candidate> = candidates.iter().take(self.top_k).collect();
            result.explanations_shown += top.len();
            let parser_correct = ranked_correct == Some(0);
            let bound_hit = ranked_correct.map(|r| r < self.top_k).unwrap_or(false);

            // Display order shown to the user.
            let mut display: Vec<usize> = (0..top.len()).collect();
            if self.shuffle_display {
                display.shuffle(&mut rng);
            }
            let displayed_formulas: Vec<Formula> =
                display.iter().map(|&i| top[i].formula.clone()).collect();
            let decision = user.choose(&displayed_formulas, Some(&example.gold), &mut rng);
            let user_correct = matches!(
                &decision,
                UserDecision::Selected(index)
                    if formulas_equivalent(&displayed_formulas[*index], &example.gold)
            );
            let hybrid_correct = match &decision {
                UserDecision::Selected(index) => {
                    formulas_equivalent(&displayed_formulas[*index], &example.gold)
                }
                UserDecision::None => parser_correct,
            };
            if SimulatedUser::is_successful(&decision, &displayed_formulas, Some(&example.gold)) {
                result.user_success_rate += 1.0;
            }
            if parser_correct {
                result.parser_correct_count += 1;
            }
            if user_correct {
                result.user_correct_count += 1;
            }
            if hybrid_correct {
                result.hybrid_correct_count += 1;
            }
            if bound_hit {
                result.bound += 1.0;
            }
        }
        if result.questions > 0 {
            let n = result.questions as f64;
            result.parser_correctness = result.parser_correct_count as f64 / n;
            result.user_correctness = result.user_correct_count as f64 / n;
            result.hybrid_correctness = result.hybrid_correct_count as f64 / n;
            result.bound /= n;
            result.mrr = reciprocal_ranks / n;
            result.user_success_rate /= n;
        }
        result
    }

    /// For each `k`, the fraction of examples whose top-k candidates contain
    /// a correct translation (the §7.2 k-sweep).
    pub fn coverage_sweep(
        parser: &SemanticParser,
        examples: &[StudyExample],
        catalog: &Catalog,
        ks: &[usize],
    ) -> Vec<(usize, f64)> {
        let parsed = parse_examples(parser, examples, catalog, wtq_runtime::default_workers());
        let ranks: Vec<Option<usize>> = examples
            .iter()
            .zip(parsed)
            .filter_map(|(example, candidates)| {
                let candidates = candidates?;
                Some(
                    candidates
                        .iter()
                        .position(|c| formulas_equivalent(&c.formula, &example.gold)),
                )
            })
            .collect();
        ks.iter()
            .map(|&k| {
                let covered = ranks
                    .iter()
                    .filter(|rank| rank.map(|r| r < k).unwrap_or(false))
                    .count();
                (
                    k,
                    if ranks.is_empty() {
                        0.0
                    } else {
                        covered as f64 / ranks.len() as f64
                    },
                )
            })
            .collect()
    }
}

/// Convert dataset examples of one split into study examples.
pub fn study_examples_from<R: Rng>(
    dataset: &wtq_dataset::Dataset,
    split: wtq_dataset::Split,
    limit: usize,
    rng: &mut R,
) -> Vec<StudyExample> {
    let mut examples: Vec<StudyExample> = dataset
        .examples_of(split)
        .into_iter()
        .map(|e| StudyExample {
            question: e.question.clone(),
            table: e.table.clone(),
            gold: e.formula(),
            answer: e.answer.clone(),
        })
        .collect();
    examples.shuffle(rng);
    examples.truncate(limit);
    examples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::ExplanationMode;
    use wtq_dataset::{Dataset, Split};

    fn dataset() -> Dataset {
        // Big enough that the Table 6 orderings asserted below sit clear of
        // single-example noise in the simulated-user comparisons.
        let config = wtq_dataset::dataset::DatasetConfig {
            num_tables: 20,
            questions_per_table: 8,
            test_fraction: 0.3,
        };
        Dataset::generate(&config, &mut ChaCha8Rng::seed_from_u64(77))
    }

    #[test]
    fn hybrid_beats_user_beats_parser_and_bound_caps_all() {
        // The Table 6 ordering: parser <= user (usually), user <= hybrid,
        // everything <= bound.
        let dataset = dataset();
        let catalog = dataset.catalog();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let examples = study_examples_from(&dataset, Split::Test, 60, &mut rng);
        assert!(examples.len() >= 20);
        let parser = SemanticParser::with_prior();
        let experiment = DeploymentExperiment::default();
        let user = SimulatedUser::average();
        let result = experiment.run(&parser, &examples, &catalog, &user, 5);

        assert_eq!(result.questions, examples.len());
        assert!(result.explanations_shown >= result.questions);
        assert!(result.hybrid_correctness >= result.user_correctness - 1e-9);
        assert!(
            result.hybrid_correctness >= result.parser_correctness - 1e-9,
            "hybrid {} should not fall below the parser {}",
            result.hybrid_correctness,
            result.parser_correctness
        );
        assert!(result.bound >= result.hybrid_correctness - 1e-9);
        assert!(result.bound <= 1.0);
        assert!(result.mrr >= result.parser_correctness - 1e-9);
        assert!(result.user_success_rate > 0.5);
    }

    #[test]
    fn explained_users_beat_unexplained_users() {
        let dataset = dataset();
        let catalog = dataset.catalog();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let examples = study_examples_from(&dataset, Split::Test, 50, &mut rng);
        let parser = SemanticParser::with_prior();
        let experiment = DeploymentExperiment::default();
        let explained = experiment.run(&parser, &examples, &catalog, &SimulatedUser::average(), 9);
        let unexplained = experiment.run(
            &parser,
            &examples,
            &catalog,
            &SimulatedUser::with_mode(ExplanationMode::RawFormulas),
            9,
        );
        assert!(explained.user_correctness > unexplained.user_correctness);
        assert!(explained.user_success_rate > unexplained.user_success_rate);
    }

    #[test]
    fn coverage_sweep_is_monotone_in_k() {
        let dataset = dataset();
        let catalog = dataset.catalog();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let examples = study_examples_from(&dataset, Split::Test, 40, &mut rng);
        let parser = SemanticParser::with_prior();
        let sweep =
            DeploymentExperiment::coverage_sweep(&parser, &examples, &catalog, &[1, 3, 7, 14]);
        assert_eq!(sweep.len(), 4);
        for window in sweep.windows(2) {
            assert!(
                window[1].1 >= window[0].1,
                "coverage must grow with k: {sweep:?}"
            );
        }
        // Widening 7 -> 14 recovers little (the paper found only 5% of the
        // remaining failures), certainly not a jump to full coverage.
        let at7 = sweep[2].1;
        let at14 = sweep[3].1;
        assert!(at14 - at7 <= 0.25, "7->14 gained {:.2}", at14 - at7);
    }

    #[test]
    fn deterministic_given_seed() {
        let dataset = dataset();
        let catalog = dataset.catalog();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let examples = study_examples_from(&dataset, Split::Test, 30, &mut rng);
        let parser = SemanticParser::with_prior();
        let experiment = DeploymentExperiment::default();
        let user = SimulatedUser::average();
        let a = experiment.run(&parser, &examples, &catalog, &user, 42);
        let b = experiment.run(&parser, &examples, &catalog, &user, 42);
        assert_eq!(a, b);
    }
}
