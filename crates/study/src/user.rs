//! The simulated non-expert user.
//!
//! A worker in the paper's study is shown the explanations (utterance +
//! highlights) of the parser's top-k candidates, in random order, and marks
//! the candidate that correctly translates the question — or *None* when no
//! candidate does. The paper measures a 78.4 % per-question success rate for
//! this task (Table 4).
//!
//! The simulation models each candidate inspection as a noisy binary
//! judgment: a correct candidate is recognized with probability
//! `recognize_correct`, an incorrect one is mistakenly accepted with
//! probability `accept_incorrect`. Both probabilities depend on the
//! explanation mode — richer explanations make judgments more reliable,
//! showing raw lambda DCS makes them near-random (the paper's observation
//! that workers failed entirely without explanations).

use rand::Rng;

use wtq_dcs::Formula;
use wtq_parser::formulas_equivalent;

/// What the user is shown for each candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExplanationMode {
    /// Raw lambda DCS formulas only (the no-explanation control).
    RawFormulas,
    /// NL utterances only (the second group of Table 5).
    Utterances,
    /// NL utterances plus provenance-based highlights (the full system).
    UtterancesAndHighlights,
}

impl ExplanationMode {
    /// Probability of recognizing the correct candidate as correct.
    pub fn recognize_correct(self) -> f64 {
        match self {
            ExplanationMode::RawFormulas => 0.22,
            ExplanationMode::Utterances => 0.88,
            ExplanationMode::UtterancesAndHighlights => 0.88,
        }
    }

    /// Probability of mistakenly accepting an incorrect candidate.
    pub fn accept_incorrect(self) -> f64 {
        match self {
            ExplanationMode::RawFormulas => 0.18,
            ExplanationMode::Utterances => 0.035,
            ExplanationMode::UtterancesAndHighlights => 0.035,
        }
    }

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ExplanationMode::RawFormulas => "lambda DCS only",
            ExplanationMode::Utterances => "utterances",
            ExplanationMode::UtterancesAndHighlights => "utterances + highlights",
        }
    }
}

/// The outcome of showing one question's candidates to a user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserDecision {
    /// The user marked the candidate at this index (into the displayed list).
    Selected(usize),
    /// The user marked every candidate as incorrect.
    None,
}

/// A simulated study participant.
#[derive(Debug, Clone)]
pub struct SimulatedUser {
    /// Explanation mode the participant works with.
    pub mode: ExplanationMode,
    /// Relative skill multiplier (1.0 = average worker). Higher skill reduces
    /// both error types; used to create worker variability in Table 4.
    pub skill: f64,
}

impl SimulatedUser {
    /// An average worker using the full explanation interface.
    pub fn average() -> Self {
        SimulatedUser {
            mode: ExplanationMode::UtterancesAndHighlights,
            skill: 1.0,
        }
    }

    /// A worker using the given explanation mode.
    pub fn with_mode(mode: ExplanationMode) -> Self {
        SimulatedUser { mode, skill: 1.0 }
    }

    fn recognize_probability(&self) -> f64 {
        let base = self.mode.recognize_correct();
        (base * self.skill).clamp(0.0, 0.995)
    }

    fn false_accept_probability(&self) -> f64 {
        let base = self.mode.accept_incorrect();
        (base / self.skill.max(0.1)).clamp(0.0, 1.0)
    }

    /// Inspect the displayed candidates and decide. `gold` is the correct
    /// translation of the question (used by the simulation as ground truth
    /// for whether each inspected candidate "looks right" to the worker).
    ///
    /// Candidates are inspected in display order; the first one judged
    /// correct is selected, matching how workers fill the AMT form.
    pub fn choose<R: Rng>(
        &self,
        candidates: &[Formula],
        gold: Option<&Formula>,
        rng: &mut R,
    ) -> UserDecision {
        for (index, candidate) in candidates.iter().enumerate() {
            let is_correct = gold
                .map(|gold| formulas_equivalent(gold, candidate))
                .unwrap_or(false);
            let accept_probability = if is_correct {
                self.recognize_probability()
            } else {
                self.false_accept_probability()
            };
            if rng.gen_bool(accept_probability) {
                return UserDecision::Selected(index);
            }
        }
        UserDecision::None
    }

    /// Whether a decision counts as a *success* in the Table 4 sense: the
    /// user either selected a correct candidate, or answered None when no
    /// displayed candidate was correct.
    pub fn is_successful(
        decision: &UserDecision,
        candidates: &[Formula],
        gold: Option<&Formula>,
    ) -> bool {
        let gold_present = gold
            .map(|gold| candidates.iter().any(|c| formulas_equivalent(gold, c)))
            .unwrap_or(false);
        match decision {
            UserDecision::Selected(index) => gold
                .map(|gold| {
                    candidates
                        .get(*index)
                        .map(|c| formulas_equivalent(gold, c))
                        .unwrap_or(false)
                })
                .unwrap_or(false),
            UserDecision::None => !gold_present,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wtq_dcs::parse_formula;

    fn candidates() -> Vec<Formula> {
        vec![
            parse_formula("max(R[Year].Country.China)").unwrap(),
            parse_formula("max(R[Year].Country.Greece)").unwrap(),
            parse_formula("R[Year].last(Country.Greece)").unwrap(),
            parse_formula("count(Country.Greece)").unwrap(),
        ]
    }

    #[test]
    fn explained_users_mostly_find_the_gold_query() {
        let gold = parse_formula("max(R[Year].Country.Greece)").unwrap();
        let user = SimulatedUser::average();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut successes = 0usize;
        let trials = 500usize;
        for _ in 0..trials {
            let decision = user.choose(&candidates(), Some(&gold), &mut rng);
            if SimulatedUser::is_successful(&decision, &candidates(), Some(&gold)) {
                successes += 1;
            }
        }
        let rate = successes as f64 / trials as f64;
        assert!(
            (0.65..=0.92).contains(&rate),
            "success rate {rate} far from the paper's 78.4%"
        );
    }

    #[test]
    fn users_without_explanations_mostly_fail() {
        let gold = parse_formula("max(R[Year].Country.Greece)").unwrap();
        let user = SimulatedUser::with_mode(ExplanationMode::RawFormulas);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut successes = 0usize;
        let trials = 500usize;
        for _ in 0..trials {
            let decision = user.choose(&candidates(), Some(&gold), &mut rng);
            if SimulatedUser::is_successful(&decision, &candidates(), Some(&gold)) {
                successes += 1;
            }
        }
        let explained_user = SimulatedUser::average();
        let mut explained_successes = 0usize;
        for _ in 0..trials {
            let decision = explained_user.choose(&candidates(), Some(&gold), &mut rng);
            if SimulatedUser::is_successful(&decision, &candidates(), Some(&gold)) {
                explained_successes += 1;
            }
        }
        assert!(
            successes * 2 < explained_successes,
            "raw-formula users ({successes}) should do far worse than explained users ({explained_successes})"
        );
    }

    #[test]
    fn none_is_the_right_answer_when_gold_is_absent() {
        let gold = parse_formula("sum(R[Year].Country.Greece)").unwrap();
        let user = SimulatedUser::average();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut none_successes = 0usize;
        let trials = 400usize;
        for _ in 0..trials {
            let decision = user.choose(&candidates(), Some(&gold), &mut rng);
            if SimulatedUser::is_successful(&decision, &candidates(), Some(&gold)) {
                assert_eq!(decision, UserDecision::None);
                none_successes += 1;
            }
        }
        assert!(none_successes as f64 / trials as f64 > 0.7);
    }

    #[test]
    fn success_judgment_edge_cases() {
        let gold = parse_formula("max(R[Year].Country.Greece)").unwrap();
        let shown = candidates();
        assert!(SimulatedUser::is_successful(
            &UserDecision::Selected(1),
            &shown,
            Some(&gold)
        ));
        assert!(!SimulatedUser::is_successful(
            &UserDecision::Selected(0),
            &shown,
            Some(&gold)
        ));
        assert!(!SimulatedUser::is_successful(
            &UserDecision::None,
            &shown,
            Some(&gold)
        ));
        assert!(!SimulatedUser::is_successful(
            &UserDecision::Selected(99),
            &shown,
            Some(&gold)
        ));
        // Without any gold query, selecting anything is wrong and None is right.
        assert!(SimulatedUser::is_successful(
            &UserDecision::None,
            &shown,
            None
        ));
        assert!(!SimulatedUser::is_successful(
            &UserDecision::Selected(0),
            &shown,
            None
        ));
    }

    #[test]
    fn mode_labels_and_probabilities_are_sane() {
        for mode in [
            ExplanationMode::RawFormulas,
            ExplanationMode::Utterances,
            ExplanationMode::UtterancesAndHighlights,
        ] {
            assert!(!mode.label().is_empty());
            assert!(mode.recognize_correct() > mode.accept_incorrect());
        }
        // The two explanation modes are equally accurate (the paper found no
        // correctness difference, only a time difference).
        assert_eq!(
            ExplanationMode::Utterances.recognize_correct(),
            ExplanationMode::UtterancesAndHighlights.recognize_correct()
        );
    }
}
