//! Work-time model (Table 5).
//!
//! The paper measured two groups of ten workers answering 20 questions each:
//! the group shown utterances *and* highlights finished in 16.2 minutes on
//! average, the utterances-only group in 24.7 minutes — a 34 % saving —
//! while both groups reached identical correctness. The mechanism is that a
//! highlight gives immediate visual feedback, so most candidates can be
//! discarded after a quick glance and only promising ones require reading
//! the full utterance.
//!
//! The model below reproduces that mechanism: every candidate costs a fixed
//! glance, and the utterance is read word-by-word only for the fraction of
//! candidates the glance could not rule out (all of them when there are no
//! highlights).

use rand::Rng;

/// Per-candidate inspection-time model, in seconds.
#[derive(Debug, Clone)]
pub struct WorkTimeModel {
    /// Time to glance at a candidate (layout, highlight scan), seconds.
    pub glance_seconds: f64,
    /// Reading speed for utterances, seconds per word.
    pub seconds_per_word: f64,
    /// Fraction of candidates whose utterance must be read in full when
    /// highlights are shown (a glance settles the rest).
    pub read_fraction_with_highlights: f64,
    /// Per-question overhead (reading the question, submitting), seconds.
    pub question_overhead_seconds: f64,
}

impl Default for WorkTimeModel {
    fn default() -> Self {
        WorkTimeModel {
            glance_seconds: 2.2,
            seconds_per_word: 0.42,
            read_fraction_with_highlights: 0.4,
            question_overhead_seconds: 9.0,
        }
    }
}

impl WorkTimeModel {
    /// Expected time (seconds) to handle one question whose candidates have
    /// the given utterance word counts.
    pub fn question_seconds(&self, utterance_words: &[usize], with_highlights: bool) -> f64 {
        let read_fraction = if with_highlights {
            self.read_fraction_with_highlights
        } else {
            1.0
        };
        let mut total = self.question_overhead_seconds;
        for &words in utterance_words {
            total += self.glance_seconds;
            total += read_fraction * words as f64 * self.seconds_per_word;
        }
        total
    }

    /// Sample a worker's time for one question, with ±25 % lognormal-ish
    /// noise to produce the spread of Table 5.
    pub fn sample_question_seconds<R: Rng>(
        &self,
        utterance_words: &[usize],
        with_highlights: bool,
        rng: &mut R,
    ) -> f64 {
        let expected = self.question_seconds(utterance_words, with_highlights);
        let noise: f64 = 1.0 + rng.gen_range(-0.25..0.25);
        expected * noise
    }

    /// Total minutes for a session of questions, each with its candidates'
    /// utterance word counts.
    pub fn session_minutes<R: Rng>(
        &self,
        questions: &[Vec<usize>],
        with_highlights: bool,
        rng: &mut R,
    ) -> f64 {
        questions
            .iter()
            .map(|words| self.sample_question_seconds(words, with_highlights, rng))
            .sum::<f64>()
            / 60.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A 20-question session with 7 candidates each, whose utterances average
    /// ~16 words (typical of the generated explanations).
    fn typical_session() -> Vec<Vec<usize>> {
        (0..20)
            .map(|i| (0..7).map(|j| 12 + ((i + j) % 9)).collect())
            .collect()
    }

    #[test]
    fn highlights_cut_session_time_by_roughly_a_third() {
        let model = WorkTimeModel::default();
        let session = typical_session();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let with: f64 = (0..10)
            .map(|_| model.session_minutes(&session, true, &mut rng))
            .sum::<f64>()
            / 10.0;
        let without: f64 = (0..10)
            .map(|_| model.session_minutes(&session, false, &mut rng))
            .sum::<f64>()
            / 10.0;
        assert!(with < without);
        let saving = 1.0 - with / without;
        assert!(
            (0.2..=0.5).contains(&saving),
            "saving {saving:.2} outside the plausible range around the paper's 34%"
        );
        // Absolute durations land in the right ballpark (minutes, not hours).
        assert!(
            (10.0..=22.0).contains(&with),
            "with-highlights session of {with:.1} min"
        );
        assert!(
            (18.0..=32.0).contains(&without),
            "utterances-only session of {without:.1} min"
        );
    }

    #[test]
    fn expected_time_is_monotone_in_words_and_candidates() {
        let model = WorkTimeModel::default();
        let short = model.question_seconds(&[8, 8, 8], true);
        let long = model.question_seconds(&[20, 20, 20], true);
        assert!(long > short);
        let few = model.question_seconds(&[10; 3], false);
        let many = model.question_seconds(&[10; 7], false);
        assert!(many > few);
    }

    #[test]
    fn sampling_is_noisy_but_centered() {
        let model = WorkTimeModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let expected = model.question_seconds(&[15; 7], true);
        let samples: Vec<f64> = (0..200)
            .map(|_| model.sample_question_seconds(&[15; 7], true, &mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - expected).abs() / expected < 0.1);
        assert!(samples.iter().any(|s| *s != expected));
    }
}
