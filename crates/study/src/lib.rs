//! # wtq-study
//!
//! The user-study substrate of the reproduction (§6.3, §7): a simulated
//! non-expert user, a work-time model, the interactive deployment loop and
//! the feedback-collection / retraining pipeline.
//!
//! The paper's evaluation is driven by Amazon Mechanical Turk workers; this
//! crate replaces them with a calibrated simulation (see DESIGN.md,
//! substitution 3) so every experiment runs offline and deterministically:
//!
//! * [`user`] — a simulated worker who inspects the explanations of the
//!   parser's top-k candidates and marks the correct one (or *None*), with
//!   per-judgment error rates depending on the explanation mode,
//! * [`worktime`] — the per-candidate inspection-time model reproducing the
//!   Table 5 observation that provenance highlights cut work time by roughly
//!   a third relative to utterance-only explanations,
//! * [`deploy`] — the deployment experiment of §7.2: parser vs. user vs.
//!   hybrid correctness, the top-k correctness bound, and the k-sweep,
//! * [`feedback`] — annotation collection with 2-of-3 agreement and parser
//!   retraining (§7.3, Table 9),
//! * [`metrics`] — the χ² significance test used in Table 6.

pub mod deploy;
pub mod feedback;
pub mod metrics;
pub mod user;
pub mod worktime;

pub use deploy::{DeploymentExperiment, DeploymentResult, StudyExample};
pub use feedback::{collect_annotations, FeedbackExperiment, FeedbackResult};
pub use metrics::chi_square_2x2;
pub use user::{ExplanationMode, SimulatedUser, UserDecision};
pub use worktime::WorkTimeModel;
