//! Workspace smoke test: the one-call happy path a new user hits first.
//!
//! Exercises `ExplanationPipeline::new().explain_question(...)` on the
//! paper's Figure 1 Olympics table and checks every explanation modality is
//! populated — candidates, NL utterance, provenance highlights and the SQL
//! rendering. Deliberately shallow: deeper pipeline semantics live in
//! `end_to_end.rs`.

use wtq_core::ExplanationPipeline;
use wtq_provenance::HighlightKind;
use wtq_table::{samples, CellRef};

#[test]
fn pipeline_explains_a_question_with_all_three_modalities() {
    let pipeline = ExplanationPipeline::new();
    let table = samples::olympics();
    let explained =
        pipeline.explain_question("Greece held its last Olympics in what year?", &table, 7);

    assert!(!explained.is_empty(), "pipeline returned no candidates");
    assert!(
        explained.len() <= 7,
        "pipeline returned more than the requested top-k"
    );

    for candidate in &explained {
        // Utterance (§5.1): a non-empty NL description of the query.
        assert!(
            !candidate.utterance.trim().is_empty(),
            "candidate {} has an empty utterance",
            candidate.formula
        );

        // Highlights (§5.2): some cell of the table is marked for any query
        // that touched the table at all.
        let any_highlighted = (0..table.num_records()).any(|record| {
            (0..table.num_columns()).any(|column| {
                candidate.highlights.kind(CellRef::new(record, column)) != HighlightKind::None
            })
        });
        assert!(
            any_highlighted,
            "candidate {} highlights no cells",
            candidate.formula
        );

        // SQL (Table 10): candidates in the translatable fragment render to a
        // SELECT statement.
        if let Some(sql) = &candidate.sql {
            assert!(
                sql.to_uppercase().contains("SELECT"),
                "candidate {} has a malformed SQL rendering: {sql}",
                candidate.formula
            );
        }
    }

    assert!(
        explained.iter().any(|c| c.sql.is_some()),
        "no candidate fell in the SQL-translatable fragment"
    );
}
