//! Cross-crate integration tests for the dataset → parser → study pipeline:
//! the experiment shapes of §7 must hold end to end on freshly generated
//! synthetic data.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wtq_dataset::dataset::{Dataset, DatasetConfig};
use wtq_dataset::Split;
use wtq_parser::{SemanticParser, TrainConfig, TrainExample, Trainer};
use wtq_study::deploy::study_examples_from;
use wtq_study::{
    collect_annotations, DeploymentExperiment, ExplanationMode, FeedbackExperiment, SimulatedUser,
};

fn build() -> (Dataset, wtq_table::Catalog) {
    let dataset = Dataset::generate(
        &DatasetConfig {
            num_tables: 12,
            questions_per_table: 7,
            test_fraction: 0.3,
        },
        &mut ChaCha8Rng::seed_from_u64(4242),
    );
    let catalog = dataset.catalog();
    (dataset, catalog)
}

#[test]
fn table6_shape_holds_end_to_end() {
    let (dataset, catalog) = build();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let examples = study_examples_from(&dataset, Split::Test, 50, &mut rng);
    assert!(examples.len() >= 15);
    let parser = SemanticParser::with_prior();
    let result = DeploymentExperiment::default().run(
        &parser,
        &examples,
        &catalog,
        &SimulatedUser::average(),
        99,
    );
    // The Table 6 ordering: interaction never hurts, the bound caps everything.
    assert!(result.hybrid_correctness >= result.parser_correctness - 1e-9);
    assert!(result.bound >= result.hybrid_correctness - 1e-9);
    assert!(
        result.bound > result.parser_correctness,
        "the parser should not already be at its bound"
    );
    // Table 4: users succeed on most questions.
    assert!(result.user_success_rate > 0.55);
    // Explanations shown ≈ questions × 7.
    assert!(result.explanations_shown <= result.questions * 7);
}

#[test]
fn explanations_make_the_difference_for_users() {
    let (dataset, catalog) = build();
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let examples = study_examples_from(&dataset, Split::Test, 40, &mut rng);
    let parser = SemanticParser::with_prior();
    let experiment = DeploymentExperiment::default();
    let with = experiment.run(&parser, &examples, &catalog, &SimulatedUser::average(), 7);
    let without = experiment.run(
        &parser,
        &examples,
        &catalog,
        &SimulatedUser::with_mode(ExplanationMode::RawFormulas),
        7,
    );
    assert!(with.user_correctness > without.user_correctness);
    assert!(with.hybrid_correctness >= without.hybrid_correctness);
}

#[test]
fn feedback_loop_improves_an_untrained_parser() {
    // Close the full loop of Figure 2: explanations → user choices →
    // annotations → retraining → better correctness on held-out questions
    // than training-free parsing.
    let (dataset, catalog) = build();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let train_pool = study_examples_from(&dataset, Split::Train, 50, &mut rng);
    let dev_pool = study_examples_from(&dataset, Split::Test, 30, &mut rng);

    let baseline = SemanticParser::with_prior();
    let annotated = collect_annotations(
        &baseline,
        &train_pool,
        &catalog,
        7,
        3,
        2,
        &SimulatedUser::average(),
        17,
    );
    assert!(
        annotated.len() >= 10,
        "too few annotations: {}",
        annotated.len()
    );
    assert!(FeedbackExperiment::annotation_precision(&annotated) >= 0.6);

    // Evaluate an untrained parser and a parser retrained on the annotations.
    let dev: Vec<(TrainExample, wtq_dcs::Formula)> = dev_pool
        .iter()
        .map(|e| {
            (
                TrainExample::weak(e.question.clone(), e.table.clone(), e.answer.clone()),
                e.gold.clone(),
            )
        })
        .collect();
    let untrained_eval = wtq_parser::train::evaluate(
        &SemanticParser::untrained(),
        dev.iter().map(|(e, g)| (e, g.clone())),
        &catalog,
        7,
    );
    let mut retrained = SemanticParser::untrained();
    let annotated_examples: Vec<TrainExample> = annotated.iter().map(|(e, _)| e.clone()).collect();
    Trainer::new(TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    })
    .train(&mut retrained, &annotated_examples, &catalog);
    let retrained_eval = wtq_parser::train::evaluate(
        &retrained,
        dev.iter().map(|(e, g)| (e, g.clone())),
        &catalog,
        7,
    );
    assert!(
        retrained_eval.correctness > untrained_eval.correctness,
        "feedback retraining did not improve correctness ({} -> {})",
        untrained_eval.correctness,
        retrained_eval.correctness
    );
    assert!(retrained_eval.mrr >= untrained_eval.mrr);
}
