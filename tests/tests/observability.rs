//! Observability integration: the `/metrics` scrape and `/trace/recent`
//! ring are trustworthy and stay reachable under pressure.
//!
//! Three acceptance properties of the observability layer:
//!
//! 1. `/metrics` is **well-formed Prometheus text** — every sample line
//!    parses, every family is typed, and counters only ever move up
//!    between scrapes,
//! 2. `/trace/recent` returns **coherent traces under concurrent load** —
//!    monotonic sequence numbers, named stage spans, sane timings,
//! 3. both surfaces are **control-plane**: they answer immediately while
//!    the in-flight queue is saturated, exactly like `Stats`.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wtq_core::Engine;
use wtq_server::{Client, ExplainBody, Server, ServerConfig, ServerHandle};
use wtq_table::{samples, Catalog, Table};

/// A deterministically generated "giant" table next to the small samples.
fn big_table(rows: usize) -> Table {
    let mut rng = ChaCha8Rng::seed_from_u64(20190416);
    let domain = &wtq_dataset::all_domains()[0];
    wtq_dataset::tablegen::generate_table_with_rows(domain, 0, rows, &mut rng)
}

fn serving_stack(
    config: ServerConfig,
    extra: Vec<Table>,
) -> (Arc<Engine>, Arc<Catalog>, ServerHandle) {
    let engine = Arc::new(Engine::new());
    let mut tables = vec![samples::olympics(), samples::medals()];
    tables.extend(extra);
    let catalog: Arc<Catalog> = Arc::new(tables.into_iter().collect());
    let handle = Server::bind("127.0.0.1:0", engine.clone(), catalog.clone(), config)
        .expect("bind loopback server");
    (engine, catalog, handle)
}

/// Parse Prometheus text into `(series name with labels) → value`, checking
/// shape along the way: every family carries `# HELP` and `# TYPE` before
/// its first sample, every sample line is `name[{labels}] value` with a
/// parseable value. Returns the samples plus each family's declared type.
fn parse_prometheus(text: &str) -> (HashMap<String, f64>, HashMap<String, String>) {
    let mut samples = HashMap::new();
    let mut types = HashMap::new();
    let mut helped: Vec<String> = Vec::new();
    for line in text.lines() {
        assert!(!line.trim().is_empty(), "no blank lines in the exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let family = rest.split_whitespace().next().expect("family after HELP");
            helped.push(family.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let family = parts.next().expect("family after TYPE");
            let kind = parts.next().expect("type name");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown type {kind} for {family}"
            );
            types.insert(family.to_string(), kind.to_string());
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line}");
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            panic!("unparseable value in line: {line}");
        });
        assert!(value.is_finite(), "non-finite sample: {line}");
        let family = series
            .split('{')
            .next()
            .expect("series name")
            .trim_end_matches("_bucket")
            .trim_end_matches("_sum")
            .trim_end_matches("_count");
        // Histogram series strip back to their family; plain counters and
        // gauges are their own family.
        assert!(
            types.contains_key(family) || types.contains_key(series.split('{').next().unwrap()),
            "sample before its # TYPE: {line}"
        );
        samples.insert(series.to_string(), value);
    }
    for family in types.keys() {
        assert!(
            helped.contains(family),
            "family {family} is typed but has no HELP"
        );
    }
    (samples, types)
}

#[test]
fn metrics_scrape_is_well_formed_and_counters_are_monotonic() {
    let (_engine, _catalog, handle) = serving_stack(ServerConfig::default(), Vec::new());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    client
        .explain("Which city hosted in 2008?", "olympics", None)
        .unwrap();
    let first = client.metrics().unwrap();
    let (before, types) = parse_prometheus(&first);

    // One registry covers every layer: server, engine, parser stages,
    // planner, caches.
    for family in [
        "wtq_server_requests_total",
        "wtq_server_endpoint_requests_total",
        "wtq_server_uptime_seconds",
        "wtq_engine_questions_served_total",
        "wtq_index_cache_ops_total",
        "wtq_answer_cache_ops_total",
        "wtq_planner_decisions_total",
        "wtq_parse_questions_total",
        "wtq_parse_stage_ns_total",
        "wtq_request_duration_seconds",
        "wtq_request_stage_duration_seconds",
        "wtq_parse_stage_duration_seconds",
    ] {
        assert!(types.contains_key(family), "missing family {family}");
    }

    // Drive more traffic, scrape again: counter-typed series never move
    // backwards, and the request counters moved forward by the exact count.
    for _ in 0..3 {
        client
            .explain(
                "In what year did France hold the Olympics?",
                "olympics",
                None,
            )
            .unwrap();
    }
    let second = client.metrics().unwrap();
    let (after, _) = parse_prometheus(&second);
    for (series, value) in &before {
        let family = series.split('{').next().unwrap();
        let base = family
            .trim_end_matches("_bucket")
            .trim_end_matches("_sum")
            .trim_end_matches("_count");
        let is_counter = types.get(family).map(String::as_str) == Some("counter")
            || types.get(base).map(String::as_str) == Some("histogram");
        if !is_counter {
            continue;
        }
        let now = after
            .get(series)
            .unwrap_or_else(|| panic!("series {series} vanished between scrapes"));
        assert!(
            now >= value,
            "counter {series} moved backwards: {value} -> {now}"
        );
    }
    assert_eq!(
        after["wtq_server_endpoint_requests_total{endpoint=\"explain\"}"]
            - before["wtq_server_endpoint_requests_total{endpoint=\"explain\"}"],
        3.0
    );
    assert_eq!(
        after["wtq_server_endpoint_requests_total{endpoint=\"metrics\"}"],
        2.0
    );
    // The three repeats were answer-cache hits: the engine executed two
    // distinct questions and the cache absorbed the rest.
    assert!(after["wtq_engine_questions_served_total"] >= 2.0);
    assert!(after["wtq_answer_cache_ops_total{op=\"hit\"}"] >= 2.0);
    handle.shutdown();
}

#[test]
fn trace_recent_is_coherent_under_concurrent_load() {
    let config = ServerConfig {
        trace_sample_rate: 1.0,
        ..ServerConfig::default()
    };
    let (_engine, _catalog, handle) = serving_stack(config, Vec::new());
    let addr = handle.local_addr();

    // Four clients hammer explains while a poller reads the ring mid-load;
    // every poll must return a well-formed snapshot, not just the last one.
    std::thread::scope(|scope| {
        for worker in 0..4 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("load client connects");
                for round in 0..6 {
                    let question = if (worker + round) % 2 == 0 {
                        "Which city hosted in 2008?"
                    } else {
                        "In what year did France hold the Olympics?"
                    };
                    client
                        .explain(question, "olympics", Some(2))
                        .expect("load request succeeds");
                }
            });
        }
        scope.spawn(move || {
            let mut client = Client::connect(addr).expect("poll client connects");
            for _ in 0..5 {
                let body = client.trace_recent().expect("poll succeeds under load");
                for trace in body.recent.iter().chain(&body.slowest) {
                    assert!(!trace.endpoint.is_empty(), "{trace:?}");
                    assert!(trace.total_us > 0.0, "{trace:?}");
                }
            }
        });
    });

    let mut client = Client::connect(addr).unwrap();
    let body = client.trace_recent().unwrap();
    assert_eq!(body.sample_period, 1);
    assert!(body.sampled >= 24, "{}", body.sampled);
    assert!(!body.recent.is_empty());
    assert!(!body.slowest.is_empty());

    // Recent ring: ordered by finish time (not seq — concurrent requests
    // finish out of start order), with each sample number appearing once.
    let mut seqs: Vec<u64> = body.recent.iter().map(|trace| trace.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), body.recent.len(), "duplicate seq in the ring");
    // Slowest ring: ascending by total duration.
    for pair in body.slowest.windows(2) {
        assert!(pair[0].total_us <= pair[1].total_us, "{pair:?}");
    }
    // Every explain trace carries the common stage spans; with only two
    // distinct questions most executions are answer-cache hits, whose
    // traces legitimately stop at cache_probe. Pick a cache-miss trace
    // (one that reached eval) for the full pipeline assertion.
    for trace in body.recent.iter().filter(|t| t.endpoint == "explain") {
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        for stage in ["decode", "queue_wait", "cache_probe", "encode"] {
            assert!(names.contains(&stage), "missing {stage}: {names:?}");
        }
    }
    let explain = body
        .recent
        .iter()
        .find(|trace| trace.endpoint == "explain" && trace.spans.iter().any(|s| s.name == "eval"))
        .expect("a cache-miss explain trace in the ring");
    assert_eq!(explain.status, "ok", "{explain:?}");
    assert!(explain.detail.contains("olympics"), "{explain:?}");
    let span_names: Vec<&str> = explain
        .spans
        .iter()
        .map(|span| span.name.as_str())
        .collect();
    for stage in [
        "decode",
        "queue_wait",
        "cache_probe",
        "admission_wait",
        "eval",
        "encode",
    ] {
        assert!(
            span_names.contains(&stage),
            "missing {stage}: {span_names:?}"
        );
    }
    for span in &explain.spans {
        assert!(span.start_us >= 0.0, "{span:?}");
        assert!(
            span.start_us + span.duration_us <= explain.total_us * 1.5 + 1.0,
            "span past the request end: {span:?} vs total {}",
            explain.total_us
        );
    }
    handle.shutdown();
}

/// Speak minimal HTTP/1.1 against the same port; returns status, headers
/// and body.
fn http_request(addr: std::net::SocketAddr, request: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .map(|(head, body)| (head.to_string(), body.to_string()))
        .unwrap_or_default();
    (status, head, body)
}

#[test]
fn metrics_and_traces_stay_reachable_while_the_queue_is_saturated() {
    let config = ServerConfig {
        max_in_flight: 1,
        trace_sample_rate: 1.0,
        ..ServerConfig::default()
    };
    let (_engine, _catalog, handle) = serving_stack(config, vec![big_table(400)]);
    let addr = handle.local_addr();

    // Occupy the single in-flight slot with a slow batch over the big table.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let questions = wtq_dataset::generate_questions(&big_table(400), 6, &mut rng);
    let batch: Vec<ExplainBody> = questions
        .iter()
        .map(|question| ExplainBody {
            question: question.question.clone(),
            table: big_table(400).name().to_string(),
            top_k: Some(2),
        })
        .collect();
    let batch_thread = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("batch client connects");
        client
            .explain_batch(batch)
            .expect("the slow batch succeeds")
    });
    let deadline = Instant::now() + Duration::from_secs(60);
    while handle.server_stats().in_flight == 0 {
        assert!(Instant::now() < deadline, "batch never became in-flight");
        std::thread::yield_now();
    }

    // Control-plane surfaces answer while the queue is full — framed…
    let mut client = Client::connect(addr).unwrap();
    let text = client
        .metrics()
        .expect("metrics must bypass the in-flight queue");
    assert!(text.contains("wtq_server_in_flight 1"), "queue not full?");
    let traces = client
        .trace_recent()
        .expect("trace ring must bypass the in-flight queue");
    assert_eq!(traces.sample_period, 1);
    // …and over HTTP, with the scrape content type.
    let (status, head, body) = http_request(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 200);
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "scrape content type missing:\n{head}"
    );
    assert!(body.contains("# TYPE wtq_request_duration_seconds histogram"));
    let (status, head, body) = http_request(addr, "GET /trace/recent HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 200);
    assert!(head.contains("application/json"), "{head}");
    let parsed: wtq_server::ResponseBody = serde_json::from_str(&body).expect("JSON trace body");
    assert!(
        matches!(parsed, wtq_server::ResponseBody::TraceRecent(_)),
        "unexpected body"
    );

    // Both still count as served requests even under saturation, and the
    // queue itself never admitted them.
    assert!(handle.server_stats().in_flight >= 1);

    let explanations = batch_thread.join().expect("batch thread clean");
    assert_eq!(explanations.len(), 6);
    handle.shutdown();
}
