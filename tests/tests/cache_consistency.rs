//! Cross-crate proofs for the deduplicating answer cache: cached answers
//! are byte-identical to fresh executions (including provenance
//! highlights), concurrent identical requests collapse onto one
//! execution, invalidation (epoch bump on re-registration, TTL) really
//! evicts, and — at the serving layer — a cache hit is answered even
//! while the admission queue is saturated, so it never draws a
//! `retry_after_ms` rejection.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wtq_cache::CacheConfig;
use wtq_core::{CachedEngine, Engine};
use wtq_server::{
    Client, ClientError, ErrorCode, ExplainBody, Server, ServerConfig, WireExplanation,
};
use wtq_table::{samples, Catalog, Table, TableBuilder};

/// A deterministically generated table from the dataset domains.
fn generated_table(domain: usize, rows: usize, seed: u64) -> Table {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let domains = wtq_dataset::all_domains();
    wtq_dataset::tablegen::generate_table_with_rows(
        &domains[domain % domains.len()],
        0,
        rows,
        &mut rng,
    )
}

/// The wire rendering both the server and these tests compare through:
/// utterances, SQL, answers and provenance highlights all serialize into
/// it, so string equality here is byte identity for everything a client
/// can observe.
fn wire_json(question: &str, table: &Table, candidates: &[wtq_core::ExplainedCandidate]) -> String {
    let wire = WireExplanation::from_candidates(question, table.name(), candidates, table);
    serde_json::to_string(&wire).expect("wire explanation serializes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Byte-identity differential: on random generated tables and
    /// questions, the cached engine's answer — both the leading (miss)
    /// execution and the subsequent pure hit — serializes to exactly the
    /// bytes of a fresh uncached execution.
    #[test]
    fn cached_answers_are_byte_identical_to_fresh_executions(
        domain in 0usize..4,
        rows in 6usize..24,
        seed in 0u64..1_000,
        top_k in 1usize..5,
    ) {
        let table = generated_table(domain, rows, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
        let questions = wtq_dataset::generate_questions(&table, 3, &mut rng);

        let engine = Arc::new(Engine::new());
        let cached = CachedEngine::new(engine.clone(), CacheConfig::default());
        for question in &questions {
            let fresh = wire_json(
                &question.question,
                &table,
                &engine.explain_question(&question.question, &table, top_k),
            );
            let miss = cached.explain_question(&question.question, &table, top_k);
            prop_assert_eq!(&fresh, &wire_json(&question.question, &table, miss.as_slice()));
            let hit = cached.explain_question(&question.question, &table, top_k);
            prop_assert_eq!(&fresh, &wire_json(&question.question, &table, hit.as_slice()));
        }
        // Every question registered one miss and one hit.
        let stats = cached.cache_stats();
        prop_assert_eq!(stats.misses, questions.len() as u64);
        prop_assert!(stats.hits >= questions.len() as u64);
    }
}

#[test]
fn concurrent_identical_requests_execute_once() {
    let table = samples::olympics();
    let engine = Arc::new(Engine::new());
    engine.index_for(&table); // warm so the count below is pure serving
    let cached = Arc::new(CachedEngine::new(engine.clone(), CacheConfig::default()));

    const THREADS: usize = 8;
    let barrier = Arc::new(Barrier::new(THREADS));
    let identical = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..THREADS {
            let cached = cached.clone();
            let barrier = barrier.clone();
            workers.push(scope.spawn(move || {
                barrier.wait();
                cached.explain_question(
                    "Greece held its last Olympics in what year?",
                    &samples::olympics(),
                    3,
                )
            }));
        }
        let answers: Vec<_> = workers
            .into_iter()
            .map(|worker| worker.join().expect("worker clean"))
            .collect();
        let reference = &answers[0];
        identical.store(
            answers.iter().filter(|a| Arc::ptr_eq(a, reference)).count(),
            Ordering::Relaxed,
        );
    });

    // One thread led the flight; everyone shares the very same Arc, and
    // the engine's own served counter proves a single execution.
    assert_eq!(identical.load(Ordering::Relaxed), THREADS);
    assert_eq!(engine.stats().questions_served, 1);
    let stats = cached.cache_stats();
    assert_eq!(stats.insertions, 1);
    assert_eq!(
        stats.hits + stats.collapsed_waiters,
        (THREADS - 1) as u64,
        "{stats:?}"
    );
}

/// A small two-column registry table whose 2008 host city is a parameter —
/// "re-registering" the table means serving a rebuilt one under the same
/// name with one cell changed.
fn host_table(city_2008: &str) -> Table {
    let mut builder =
        TableBuilder::new("hosts").columns(vec!["Year".to_string(), "City".to_string()]);
    for (year, city) in [
        ("2000", "Sydney"),
        ("2004", "Athens"),
        ("2008", city_2008),
        ("2012", "London"),
    ] {
        builder = builder
            .row_text(&[year.to_string(), city.to_string()])
            .expect("arity matches");
    }
    builder.build().expect("non-empty header")
}

#[test]
fn re_registration_invalidates_and_ttl_expires() {
    let question = "Which city hosted in 2008?";
    let engine = Arc::new(Engine::new());
    let cached = CachedEngine::new(engine.clone(), CacheConfig::default());

    // v1 of the table answers Beijing; the answer is cached.
    let v1 = host_table("Beijing");
    let first = cached.explain_question(question, &v1, 3);
    assert!(first[0].answer.to_string().contains("Beijing"));
    let key_v1 = cached.key_for(question, &v1, Some(3));
    assert!(cached.lookup(&key_v1).is_some());

    // Re-register: same name, one cell changed. The content fingerprint
    // differs, so the stale entry can never answer the new table...
    let v2 = host_table("Shanghai");
    assert_ne!(v1.content_fingerprint(), v2.content_fingerprint());
    let second = cached.explain_question(question, &v2, 3);
    assert!(second[0].answer.to_string().contains("Shanghai"));

    // ... and an explicit epoch bump (what the server's table reload path
    // does) drops the old fingerprint's entries on next lookup.
    cached.invalidate_table(&v1);
    assert!(cached.lookup(&key_v1).is_none());
    let stats = cached.cache_stats();
    assert!(stats.stale_drops >= 1, "{stats:?}");
    // The v2 entry lives under its own fingerprint and epoch — untouched.
    assert!(cached
        .lookup(&cached.key_for(question, &v2, Some(3)))
        .is_some());

    // TTL: with a short time-to-live the entry ages out by itself.
    let ttl_cached = CachedEngine::new(
        engine,
        CacheConfig {
            ttl: Some(Duration::from_millis(10)),
            ..CacheConfig::default()
        },
    );
    let _ = ttl_cached.explain_question(question, &v1, 3);
    let key = ttl_cached.key_for(question, &v1, Some(3));
    assert!(ttl_cached.lookup(&key).is_some());
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        std::thread::sleep(Duration::from_millis(15));
        if ttl_cached.lookup(&key).is_none() {
            break;
        }
        assert!(Instant::now() < deadline, "TTL entry never expired");
    }
    let stats = ttl_cached.cache_stats();
    assert!(stats.evictions_ttl >= 1, "{stats:?}");
}

#[test]
fn cache_hits_are_served_during_saturation_without_retry_after() {
    // A single-slot queue, a slow batch filling it — the setup that makes
    // every fresh request bounce with retry_after_ms. A question that is
    // already cached must keep being answered anyway: the lookup runs
    // before the in-flight gate, control-plane style.
    let config = ServerConfig {
        max_in_flight: 1,
        retry_after_ms: 77,
        ..ServerConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(20190416);
    let domain = &wtq_dataset::all_domains()[0];
    let big = wtq_dataset::tablegen::generate_table_with_rows(domain, 0, 400, &mut rng);
    let big_name = big.name().to_string();
    let big_questions = wtq_dataset::generate_questions(&big, 6, &mut rng);

    let engine = Arc::new(Engine::new());
    let catalog: Arc<Catalog> = Arc::new([samples::olympics(), big].into_iter().collect());
    let handle = Server::bind("127.0.0.1:0", engine, catalog, config).expect("bind server");
    let addr = handle.local_addr();

    // Populate the cache while the server is idle.
    let mut client = Client::connect(addr).expect("client connects");
    let cached_question = "Which city hosted in 2008?";
    let warm = client
        .explain(cached_question, "olympics", None)
        .expect("warm-up populates the cache");
    assert!(!warm.candidates.is_empty());

    // Saturate the single in-flight slot with a slow batch.
    let batch: Vec<ExplainBody> = big_questions
        .iter()
        .map(|question| ExplainBody {
            question: question.question.clone(),
            table: big_name.clone(),
            top_k: Some(2),
        })
        .collect();
    let batch_thread = std::thread::spawn(move || {
        let mut batch_client = Client::connect(addr).expect("batch client connects");
        batch_client
            .explain_batch(batch)
            .expect("slow batch succeeds")
    });
    let deadline = Instant::now() + Duration::from_secs(60);
    while handle.server_stats().in_flight == 0 {
        assert!(Instant::now() < deadline, "batch never became in-flight");
        std::thread::yield_now();
    }

    // A fresh (uncached) question is rejected with the retry hint...
    match client.explain(
        "In what year did France hold the Olympics?",
        "olympics",
        None,
    ) {
        Err(ClientError::Server(err)) => {
            assert_eq!(err.code, ErrorCode::Overloaded);
            assert_eq!(err.retry_after_ms, Some(77));
        }
        other => panic!("expected an Overloaded rejection, got {other:?}"),
    }
    assert!(
        handle.server_stats().in_flight > 0,
        "batch drained too early"
    );

    // ... while the cached question (same table, same top_k, a variant
    // phrasing normalization maps onto the same key) is served in full.
    let served = client
        .explain(cached_question, "olympics", None)
        .expect("cache hit must never see retry_after_ms");
    assert_eq!(
        serde_json::to_string(&served).unwrap(),
        serde_json::to_string(&warm).unwrap(),
        "saturated-path hit must be byte-identical to the idle answer"
    );
    let variant = client
        .explain("which city  hosted in 2008??", "olympics", None)
        .expect("normalized variant shares the cached entry");
    assert_eq!(variant.candidates.len(), served.candidates.len());

    // A fully-cached batch also bypasses the saturated queue.
    let cached_batch = client
        .explain_batch(vec![ExplainBody {
            question: cached_question.to_string(),
            table: "olympics".to_string(),
            top_k: None,
        }])
        .expect("fully-cached batch bypasses the queue");
    assert_eq!(cached_batch.len(), 1);
    assert!(
        handle.server_stats().in_flight > 0,
        "batch drained too early"
    );

    batch_thread.join().expect("batch thread clean");
    handle.shutdown();
}
