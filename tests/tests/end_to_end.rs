//! Cross-crate integration tests: the full explanation pipeline from question
//! to utterance, highlights and SQL, on the paper's running examples.

use wtq_core::ExplanationPipeline;
use wtq_dcs::{eval, parse_formula, Answer};
use wtq_parser::formulas_equivalent;
use wtq_provenance::HighlightKind;
use wtq_sql::{translate, PlanMode, SqlEngine};

/// Run a translated query under the cost-based planner (cold).
fn execute(
    query: &wtq_sql::SqlQuery,
    table: &wtq_table::Table,
) -> wtq_sql::Result<wtq_sql::SqlResult> {
    SqlEngine::new(table).execute(query, PlanMode::Auto)
}
use wtq_table::{samples, CellRef};

#[test]
fn figure_one_pipeline_produces_all_three_explanations() {
    let pipeline = ExplanationPipeline::new();
    let table = samples::olympics();
    let explained =
        pipeline.explain_question("Greece held its last Olympics in what year?", &table, 7);
    assert!(!explained.is_empty());

    let gold = parse_formula("max(R[Year].Country.Greece)").unwrap();
    let candidate = explained
        .iter()
        .find(|c| formulas_equivalent(&c.formula, &gold))
        .expect("the correct translation is among the explained candidates");

    // Utterance (§5.1).
    assert_eq!(
        candidate.utterance,
        "maximum of values in column Year in rows where value of column Country is Greece"
    );
    // Answer.
    assert_eq!(candidate.answer, Answer::number(2004.0));
    // Highlights (§5.2): Greece cells framed, their Year cells colored, and
    // the Year header marked with MAX.
    let year = table.column_index("Year").unwrap();
    let country = table.column_index("Country").unwrap();
    assert_eq!(
        candidate.highlights.kind(CellRef::new(5, year)),
        HighlightKind::Colored
    );
    assert_eq!(
        candidate.highlights.kind(CellRef::new(5, country)),
        HighlightKind::Framed
    );
    assert_eq!(candidate.highlights.header_label(&table, year), "MAX(Year)");
    // SQL (Table 10) executes to the same answer on the same table.
    let sql = translate(&candidate.formula).unwrap();
    let rows = execute(&sql, &table).unwrap();
    assert_eq!(rows, vec![vec![wtq_table::Value::num(2004.0)]]);
}

#[test]
fn lambda_dcs_sql_and_answers_agree_across_operator_families() {
    // Every operator family of Table 10, cross-checked between the lambda DCS
    // evaluator and the SQL engine on the paper's example tables.
    let cases: Vec<(&str, wtq_table::Table)> = vec![
        ("R[Year].City.Athens", samples::olympics()),
        ("R[Year].Prev.City.London", samples::olympics()),
        ("R[Year].R[Prev].City.Athens", samples::olympics()),
        ("sum(R[Year].City.Athens)", samples::olympics()),
        (
            "sub(R[Total].Nation.Fiji, R[Total].Nation.Tonga)",
            samples::medals(),
        ),
        (
            "sub(count(Lake.\"Lake Huron\"), count(Lake.\"Lake Erie\"))",
            samples::shipwrecks(),
        ),
        (
            "R[City].(Country.China or Country.Greece)",
            samples::olympics(),
        ),
        ("R[City].(City.London and Country.UK)", samples::olympics()),
        ("R[City].argmax(Rows, Year)", samples::olympics()),
        (
            "R[Year].last(League.\"USL A-League\")",
            samples::usl_league(),
        ),
        ("most_common(R[Lake].Rows, Lake)", samples::shipwrecks()),
        (
            "compare_max((London or Beijing), Year, City)",
            samples::olympics(),
        ),
        ("count(Games.(> 4))", samples::squad()),
    ];
    for (text, table) in cases {
        let formula = parse_formula(text).unwrap();
        let dcs_answer = Answer::from_denotation(&eval(&formula, &table).unwrap());
        let sql = translate(&formula).unwrap_or_else(|e| panic!("translate {text}: {e}"));
        let rows = execute(&sql, &table).unwrap_or_else(|e| panic!("execute {text}: {e}"));
        let sql_answer = Answer::values(rows.iter().filter_map(|r| r.first().cloned()));
        assert_eq!(dcs_answer, sql_answer, "disagreement for {text}");
    }
}

#[test]
fn every_explained_candidate_is_internally_consistent() {
    // For an arbitrary question, every explained candidate must (a) evaluate
    // to its reported answer, (b) have a well-formed provenance chain and
    // (c) have a non-empty utterance mentioning each column it projects.
    let pipeline = ExplanationPipeline::new();
    let table = samples::medals();
    let explained = pipeline.explain_question(
        "What is the difference in Total between Fiji and Tonga?",
        &table,
        7,
    );
    assert!(!explained.is_empty());
    for candidate in &explained {
        let denotation = eval(&candidate.formula, &table).unwrap();
        assert_eq!(Answer::from_denotation(&denotation), candidate.answer);
        assert!(candidate.highlights.chain.is_well_formed());
        assert!(!candidate.utterance.is_empty());
        for column in candidate.formula.columns_mentioned() {
            assert!(
                candidate
                    .utterance
                    .to_lowercase()
                    .contains(&column.to_lowercase()),
                "utterance {:?} does not mention column {column}",
                candidate.utterance
            );
        }
    }
}

#[test]
fn identical_answers_do_not_imply_identical_explanations() {
    // The Figure 8 motivation: two candidates with the same answer must still
    // be distinguishable through their utterances.
    let table = samples::usl_league();
    let correct = parse_formula("max(R[Year].League.\"USL A-League\")").unwrap();
    let incorrect =
        parse_formula("sum(R[Year].(League.\"USL A-League\" and \"Open Cup\".\"4th Round\"))")
            .unwrap();
    let a = Answer::from_denotation(&eval(&correct, &table).unwrap());
    let b = Answer::from_denotation(&eval(&incorrect, &table).unwrap());
    assert_eq!(
        a, b,
        "the two Figure 8 candidates should share their answer"
    );
    assert_ne!(wtq_explain::utter(&correct), wtq_explain::utter(&incorrect));
}
