//! Encode-once serving proofs: responses assembled by splicing the
//! cached candidate bytes into the envelope are byte-identical — on the
//! wire, not just semantically — to responses rebuilt and re-serialized
//! from the candidates (`ServerConfig::encode_once: false`, the pre-splice
//! behavior kept for A/B benchmarking). Checked end-to-end over both
//! protocols:
//!
//! * the framed TCP protocol: raw response frames (length prefix
//!   included) from a cache miss, a cache hit, and the rebuild server all
//!   match byte for byte, and
//! * the HTTP adapter: full `POST /explain` responses (status line,
//!   headers, body) match the same way.
//!
//! Questions cover the JSON escaper's interesting surface (quotes,
//! backslashes, non-ASCII) since the splice path writes the question and
//! table echoes through a hand-rolled escaper.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use wtq_core::Engine;
use wtq_server::wire::{self, encode_frame};
use wtq_server::{
    ExplainBody, RequestBody, RequestEnvelope, ResponseBody, ResponseEnvelope, Server,
    ServerConfig, ServerHandle, PROTOCOL_VERSION,
};
use wtq_table::{samples, Catalog};

fn serving_stack(encode_once: bool) -> ServerHandle {
    let engine = Arc::new(Engine::new());
    let catalog: Arc<Catalog> = Arc::new(
        [samples::olympics(), samples::medals()]
            .into_iter()
            .collect(),
    );
    let config = ServerConfig {
        encode_once,
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", engine, catalog, config).expect("bind loopback server")
}

/// One framed explain round-trip; returns the raw response frame,
/// length prefix included.
fn framed_explain(
    addr: SocketAddr,
    id: u64,
    question: &str,
    table: &str,
    top_k: Option<usize>,
) -> Vec<u8> {
    let request = RequestEnvelope {
        v: PROTOCOL_VERSION,
        id,
        body: RequestBody::Explain(ExplainBody {
            question: question.to_string(),
            table: table.to_string(),
            top_k,
        }),
    };
    let payload = serde_json::to_string(&request).unwrap().into_bytes();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&encode_frame(&payload).unwrap()).unwrap();

    let mut frame = vec![0u8; 4];
    stream.read_exact(&mut frame).unwrap();
    let len = u32::from_be_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
    frame.resize(4 + len, 0);
    stream.read_exact(&mut frame[4..]).unwrap();
    frame
}

/// One `POST /explain` round-trip; returns the full raw HTTP response
/// (status line, headers and body — the adapter closes per request, so
/// read-to-EOF captures exactly one response).
fn http_explain(addr: SocketAddr, question: &str, table: &str, top_k: Option<usize>) -> Vec<u8> {
    let body = serde_json::to_string(&ExplainBody {
        question: question.to_string(),
        table: table.to_string(),
        top_k,
    })
    .unwrap();
    let request = format!(
        "POST /explain HTTP/1.1\r\nHost: wtq\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    response
}

/// Escaper-stressing request shapes next to the plain ones. Every case
/// must produce candidates or an unknown-table-free explanation — the
/// point is the bytes, not the answers.
const CASES: [(&str, &str, Option<usize>); 4] = [
    (
        "Greece held its last Olympics in what year?",
        "olympics",
        Some(7),
    ),
    ("Which city hosted in 2008?", "olympics", None),
    (
        "What is the difference in Total between Fiji and Tonga?",
        "medals",
        Some(5),
    ),
    // Quotes, backslash, tab and non-ASCII flow through the hand-rolled
    // escaper on the splice path and through serde on the rebuild path.
    (
        "what \"year\" did \\ Athens\thost — 表🙂?",
        "olympics",
        Some(3),
    ),
];

#[test]
fn framed_responses_are_byte_identical_across_miss_hit_and_rebuild() {
    let spliced = serving_stack(true);
    let rebuilt = serving_stack(false);

    for (i, (question, table, top_k)) in CASES.into_iter().enumerate() {
        let id = 1000 + i as u64;
        let miss = framed_explain(spliced.local_addr(), id, question, table, top_k);
        let hit = framed_explain(spliced.local_addr(), id, question, table, top_k);
        let reference = framed_explain(rebuilt.local_addr(), id, question, table, top_k);
        assert_eq!(miss, hit, "miss vs hit frame for {question:?}");
        assert_eq!(miss, reference, "spliced vs rebuilt frame for {question:?}");

        // The frame is not just stable — it is a well-formed envelope with
        // a real explanation inside.
        let envelope: ResponseEnvelope =
            serde_json::from_str(std::str::from_utf8(&miss[4..]).unwrap()).unwrap();
        assert_eq!(envelope.id, id);
        match envelope.body {
            ResponseBody::Explanation(explanation) => {
                assert_eq!(explanation.question, question);
                assert_eq!(explanation.table, table);
                assert!(explanation.error.is_none());
            }
            other => panic!("expected an explanation, got {other:?}"),
        }
    }
    spliced.shutdown();
    rebuilt.shutdown();
}

#[test]
fn http_responses_are_byte_identical_across_miss_hit_and_rebuild() {
    let spliced = serving_stack(true);
    let rebuilt = serving_stack(false);

    for (question, table, top_k) in CASES {
        let miss = http_explain(spliced.local_addr(), question, table, top_k);
        let hit = http_explain(spliced.local_addr(), question, table, top_k);
        let reference = http_explain(rebuilt.local_addr(), question, table, top_k);
        assert_eq!(miss, hit, "miss vs hit response for {question:?}");
        assert_eq!(
            miss, reference,
            "spliced vs rebuilt response for {question:?}"
        );

        let text = String::from_utf8(miss).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        let body = text.split("\r\n\r\n").nth(1).expect("a body after headers");
        let content_length: usize = text
            .lines()
            .find_map(|line| line.strip_prefix("Content-Length: "))
            .expect("a Content-Length header")
            .trim()
            .parse()
            .unwrap();
        assert_eq!(content_length, body.len());
        let parsed: ResponseBody = serde_json::from_str(body).unwrap();
        assert!(matches!(parsed, ResponseBody::Explanation(_)));
    }
    spliced.shutdown();
    rebuilt.shutdown();
}

#[test]
fn spliced_frames_match_the_reference_serialization_shape() {
    // The spliced frame must equal `encode_frame(serde_json(envelope))` of
    // the envelope it decodes to — i.e. splicing introduced no alternate
    // JSON spelling (key order, number formatting, escaping).
    let spliced = serving_stack(true);
    for (i, (question, table, top_k)) in CASES.into_iter().enumerate() {
        let frame = framed_explain(spliced.local_addr(), 7 + i as u64, question, table, top_k);
        let envelope: ResponseEnvelope =
            serde_json::from_str(std::str::from_utf8(&frame[4..]).unwrap()).unwrap();
        let reencoded =
            wire::encode_frame(serde_json::to_string(&envelope).unwrap().as_bytes()).unwrap();
        assert_eq!(frame, reencoded, "round-trip for {question:?}");
    }
    spliced.shutdown();
}
