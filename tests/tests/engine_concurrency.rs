//! Concurrency correctness of the Engine/Session split.
//!
//! Two guarantees are enforced here, end to end across the workspace:
//!
//! 1. **Determinism** — `Engine::explain_batch` over a *shuffled* question
//!    set, on a multi-worker pool, produces explanations byte-identical to
//!    the sequential per-question path: same formulas, bit-identical
//!    scores, same utterances, same SQL, and the same provenance cell
//!    traces (checked through both the structured `Highlights` and the
//!    rendered highlight grid).
//! 2. **Shared-engine safety** — N threads × M questions hammering one
//!    `Engine` (one shared LRU index cache) all observe the same answers a
//!    single-threaded run produces.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wtq_core::{Engine, ExplainRequest, Explanation};
use wtq_dataset::dataset::{Dataset, DatasetConfig};
use wtq_table::Catalog;

fn environment() -> (Dataset, Catalog) {
    let config = DatasetConfig {
        num_tables: 6,
        questions_per_table: 5,
        test_fraction: 0.3,
    };
    let dataset = Dataset::generate(&config, &mut ChaCha8Rng::seed_from_u64(2024));
    let catalog = dataset.catalog();
    (dataset, catalog)
}

/// Every observable byte of one explanation, including the provenance cell
/// traces (the rendered grid marks exactly the traced cells).
fn fingerprint(explanation: &Explanation, catalog: &Catalog) -> String {
    let mut out = format!(
        "question={} table={} error={:?}\n",
        explanation.question, explanation.table, explanation.error
    );
    let table = catalog.get(&explanation.table);
    for candidate in &explanation.candidates {
        out.push_str(&format!(
            "formula={} score={:016x} answer={} utterance={} sql={:?}\nhighlights={:?}\n",
            candidate.formula,
            candidate.score.to_bits(),
            candidate.answer,
            candidate.utterance,
            candidate.sql,
            candidate.highlights,
        ));
        if let Some(table) = table {
            out.push_str(&candidate.render_highlights(table, false));
            out.push('\n');
        }
    }
    out
}

#[test]
fn shuffled_batch_is_byte_identical_to_the_sequential_path() {
    let (dataset, catalog) = environment();
    let mut requests: Vec<ExplainRequest> = dataset
        .examples
        .iter()
        .map(|example| ExplainRequest::new(example.question.clone(), example.table.clone()))
        .collect();
    requests.shuffle(&mut ChaCha8Rng::seed_from_u64(7));
    assert!(requests.len() >= 20);

    let engine = Engine::new();
    let parallel = engine.explain_batch_with(4, &catalog, &requests);
    // The sequential reference: one question at a time through the
    // single-question serving path on a *fresh* engine (empty cache), so
    // the comparison also proves cache state cannot leak into results.
    let reference_engine = Engine::new();
    let sequential: Vec<Explanation> = requests
        .iter()
        .map(|request| {
            let table = catalog.get(&request.table).expect("table exists");
            Explanation {
                question: request.question.clone(),
                table: request.table.clone(),
                candidates: reference_engine.explain_question(
                    &request.question,
                    table,
                    engine.config().top_k,
                ),
                error: None,
            }
        })
        .collect();

    assert_eq!(parallel.len(), sequential.len());
    let mut explained_candidates = 0usize;
    for (parallel, sequential) in parallel.iter().zip(&sequential) {
        assert_eq!(
            fingerprint(parallel, &catalog),
            fingerprint(sequential, &catalog)
        );
        explained_candidates += parallel.candidates.len();
    }
    // The comparison was not vacuous.
    assert!(explained_candidates >= requests.len());
}

#[test]
fn many_threads_sharing_one_engine_agree_with_the_sequential_run() {
    let (dataset, catalog) = environment();
    let questions: Vec<(String, String)> = dataset
        .examples
        .iter()
        .take(12)
        .map(|example| (example.question.clone(), example.table.clone()))
        .collect();

    let engine = Engine::new();
    // Sequential reference answers, computed once up front.
    let reference: Vec<String> = questions
        .iter()
        .map(|(question, table_name)| {
            let table = catalog.get(table_name).expect("table exists");
            engine
                .explain_question(question, table, 7)
                .iter()
                .map(|candidate| {
                    format!(
                        "{}|{:016x}|{}",
                        candidate.formula,
                        candidate.score.to_bits(),
                        candidate.answer
                    )
                })
                .collect::<Vec<String>>()
                .join(";")
        })
        .collect();

    // N threads × M questions over the same shared engine, each thread
    // walking the questions in a different rotation so cache accesses
    // interleave adversarially.
    const THREADS: usize = 8;
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let engine = &engine;
            let catalog = &catalog;
            let questions = &questions;
            let reference = &reference;
            scope.spawn(move || {
                for offset in 0..questions.len() {
                    let position = (thread + offset) % questions.len();
                    let (question, table_name) = &questions[position];
                    let table = catalog.get(table_name).expect("table exists");
                    let session = engine.session(table);
                    let observed = session
                        .explain_question(question, 7)
                        .iter()
                        .map(|candidate| {
                            format!(
                                "{}|{:016x}|{}",
                                candidate.formula,
                                candidate.score.to_bits(),
                                candidate.answer
                            )
                        })
                        .collect::<Vec<String>>()
                        .join(";");
                    assert_eq!(&observed, &reference[position], "question {position}");
                }
            });
        }
    });
    let stats = engine.index_cache().stats();
    // Every table was indexed at most a handful of times (racing builds),
    // not once per lookup.
    assert!(stats.hits > stats.misses);
}
