//! Client ↔ server integration: loopback proofs that the serving layer is a
//! transparent, backpressured window onto the shared `Engine`.
//!
//! The three acceptance properties of the serving layer:
//!
//! 1. responses are **byte-identical** to direct `Engine::explain_question`
//!    calls (the wire adds framing, not meaning),
//! 2. a full in-flight queue yields an immediate backpressure rejection
//!    with a retry hint — never a hang,
//! 3. two tables of very different sizes both make progress under
//!    concurrent load (per-table admission control).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wtq_core::{Engine, ExplainRequest};
use wtq_server::{
    Client, ClientError, ErrorCode, ExplainBody, RetryPolicy, Server, ServerConfig, ServerHandle,
    WireExplanation,
};
use wtq_table::{samples, Catalog, Table};

/// A deterministically generated "giant" table next to the small samples.
fn big_table(rows: usize) -> Table {
    let mut rng = ChaCha8Rng::seed_from_u64(20190416);
    let domain = &wtq_dataset::all_domains()[0];
    wtq_dataset::tablegen::generate_table_with_rows(domain, 0, rows, &mut rng)
}

fn serving_stack(
    config: ServerConfig,
    extra: Vec<Table>,
) -> (Arc<Engine>, Arc<Catalog>, ServerHandle) {
    let engine = Arc::new(Engine::new());
    let mut tables = vec![samples::olympics(), samples::medals()];
    tables.extend(extra);
    let catalog: Arc<Catalog> = Arc::new(tables.into_iter().collect());
    let handle = Server::bind("127.0.0.1:0", engine.clone(), catalog.clone(), config)
        .expect("bind loopback server");
    (engine, catalog, handle)
}

#[test]
fn responses_are_byte_identical_to_direct_engine_calls() {
    let (engine, catalog, handle) = serving_stack(ServerConfig::default(), Vec::new());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let cases = [
        ("Greece held its last Olympics in what year?", "olympics", 7),
        ("Which city hosted in 2008?", "olympics", 3),
        (
            "What is the difference in Total between Fiji and Tonga?",
            "medals",
            5,
        ),
    ];
    for (question, table_name, top_k) in cases {
        let served = client
            .explain(question, table_name, Some(top_k))
            .expect("server explains");
        assert!(!served.candidates.is_empty(), "{question}");

        // The reference path: the same shared engine, called directly, then
        // flattened through the same wire conversion.
        let table = catalog.get(table_name).unwrap();
        let direct = WireExplanation::from_candidates(
            question,
            table_name,
            &engine.explain_question(question, table, top_k),
            table,
        );
        assert_eq!(
            serde_json::to_string(&served).unwrap(),
            serde_json::to_string(&direct).unwrap(),
            "served explanation must serialize byte-identically for {question}"
        );
    }
    handle.shutdown();
}

#[test]
fn batch_responses_match_the_direct_batch_path() {
    let (engine, catalog, handle) = serving_stack(ServerConfig::default(), Vec::new());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let requests = vec![
        ExplainBody {
            question: "Greece held its last Olympics in what year?".to_string(),
            table: "olympics".to_string(),
            top_k: None,
        },
        ExplainBody {
            question: "total Gold of Fiji?".to_string(),
            table: "medals".to_string(),
            top_k: Some(2),
        },
        ExplainBody {
            question: "anything".to_string(),
            table: "no-such-table".to_string(),
            top_k: None,
        },
    ];
    let served = client.explain_batch(requests.clone()).expect("batch runs");
    assert_eq!(served.len(), 3);

    let engine_requests: Vec<ExplainRequest> = requests
        .iter()
        .map(|request| ExplainRequest {
            question: request.question.clone(),
            table: request.table.clone(),
            top_k: request.top_k,
        })
        .collect();
    let direct = engine.explain_batch(&catalog, &engine_requests);
    for (served, direct) in served.iter().zip(&direct) {
        let direct_wire = WireExplanation::from_explanation(direct, catalog.get(&direct.table));
        assert_eq!(
            serde_json::to_string(served).unwrap(),
            serde_json::to_string(&direct_wire).unwrap()
        );
    }
    // The unknown table came back as a per-question error, not a failure.
    assert!(served[2]
        .error
        .as_deref()
        .unwrap()
        .contains("no-such-table"));
    assert!(served[2].candidates.is_empty());
    handle.shutdown();
}

#[test]
fn full_in_flight_queue_rejects_with_retry_after_instead_of_hanging() {
    let config = ServerConfig {
        max_in_flight: 1,
        retry_after_ms: 77,
        ..ServerConfig::default()
    };
    let (_engine, _catalog, handle) = serving_stack(config, vec![big_table(400)]);
    let addr = handle.local_addr();

    // Occupy the single in-flight slot with a slow batch over the big table.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let questions = wtq_dataset::generate_questions(&big_table(400), 6, &mut rng);
    let batch: Vec<ExplainBody> = questions
        .iter()
        .map(|question| ExplainBody {
            question: question.question.clone(),
            table: big_table(400).name().to_string(),
            top_k: Some(2),
        })
        .collect();
    let batch_thread = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("batch client connects");
        client
            .explain_batch(batch)
            .expect("the slow batch succeeds")
    });

    // Wait (bounded) until the batch actually holds the slot.
    let deadline = Instant::now() + Duration::from_secs(60);
    while handle.server_stats().in_flight == 0 {
        assert!(
            Instant::now() < deadline,
            "batch never became in-flight; stats: {:?}",
            handle.server_stats()
        );
        std::thread::yield_now();
    }

    // The queue is full: a single explain must be rejected immediately with
    // the configured retry hint — not block until the batch finishes.
    let mut client = Client::connect(addr).unwrap();
    let start = Instant::now();
    let rejection = client.explain("Which city hosted in 2008?", "olympics", None);
    match rejection {
        Err(ClientError::Server(err)) => {
            assert_eq!(err.code, ErrorCode::Overloaded);
            assert_eq!(err.retry_after_ms, Some(77));
        }
        other => panic!("expected an Overloaded rejection, got {other:?}"),
    }
    // "Immediately": the rejection must not have waited out the batch.
    let in_flight_after = handle.server_stats().in_flight;
    assert!(
        in_flight_after > 0,
        "rejection raced the batch (took {:?}); grow the batch if this flakes",
        start.elapsed()
    );

    let explanations = batch_thread.join().expect("batch thread clean");
    assert_eq!(explanations.len(), 6);
    assert!(handle.server_stats().rejected_overload >= 1);

    // Once the queue drains, the same request is admitted again.
    let explanation = client
        .explain("Which city hosted in 2008?", "olympics", None)
        .expect("after drain the queue admits again");
    assert!(!explanation.candidates.is_empty());
    handle.shutdown();
}

#[test]
fn retry_helper_rides_out_backpressure_and_respects_its_budget() {
    let config = ServerConfig {
        max_in_flight: 1,
        retry_after_ms: 10,
        ..ServerConfig::default()
    };
    let (_engine, _catalog, handle) = serving_stack(config, vec![big_table(400)]);
    let addr = handle.local_addr();

    // Occupy the single in-flight slot with a slow batch over the big table.
    let mut rng = ChaCha8Rng::seed_from_u64(29);
    let questions = wtq_dataset::generate_questions(&big_table(400), 6, &mut rng);
    let batch: Vec<ExplainBody> = questions
        .iter()
        .map(|question| ExplainBody {
            question: question.question.clone(),
            table: big_table(400).name().to_string(),
            top_k: Some(2),
        })
        .collect();
    let batch_thread = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("batch client connects");
        client
            .explain_batch(batch)
            .expect("the slow batch succeeds")
    });
    let deadline = Instant::now() + Duration::from_secs(60);
    while handle.server_stats().in_flight == 0 {
        assert!(Instant::now() < deadline, "batch never became in-flight");
        std::thread::yield_now();
    }

    // A tight budget gives up: the final rejection surfaces as-is, after
    // max_retries + 1 total attempts (observable in the rejection counter).
    let mut client = Client::connect(addr).unwrap();
    let stingy = RetryPolicy {
        max_retries: 2,
        default_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
    };
    match client.explain_with_retry("Which city hosted in 2008?", "olympics", None, &stingy) {
        Err(ClientError::Server(err)) => {
            assert_eq!(err.code, ErrorCode::Overloaded);
            assert_eq!(err.retry_after_ms, Some(10));
        }
        other => panic!("expected the budget to run out on a full queue, got {other:?}"),
    }
    assert!(
        handle.server_stats().rejected_overload >= 3,
        "each attempt must have reached the server: {:?}",
        handle.server_stats()
    );

    // A generous budget rides the rejections out and succeeds once the
    // batch drains — without the caller ever seeing an Overloaded error.
    let generous = RetryPolicy {
        max_retries: 10_000,
        default_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(50),
    };
    let explanation = client
        .explain_with_retry("Which city hosted in 2008?", "olympics", None, &generous)
        .expect("retries outlast the slow batch");
    assert!(!explanation.candidates.is_empty());

    batch_thread.join().expect("batch thread clean");
    handle.shutdown();
}

#[test]
fn hot_table_cannot_fill_the_whole_queue() {
    // One table at its queue share must be rejected while other tables'
    // requests are still admitted — the starvation the per-table occupancy
    // bound exists to prevent.
    let config = ServerConfig {
        max_in_flight: 16,
        per_table_tokens: 1,
        max_table_in_flight: 1,
        ..ServerConfig::default()
    };
    let big = big_table(400);
    let big_name = big.name().to_string();
    let (_engine, _catalog, handle) = serving_stack(config, vec![big]);
    let addr = handle.local_addr();

    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let questions = wtq_dataset::generate_questions(&big_table(400), 6, &mut rng);
    let batch: Vec<ExplainBody> = questions
        .iter()
        .map(|question| ExplainBody {
            question: question.question.clone(),
            table: big_name.clone(),
            top_k: Some(2),
        })
        .collect();
    let batch_thread = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("batch client connects");
        client
            .explain_batch(batch)
            .expect("the slow batch succeeds")
    });
    let deadline = Instant::now() + Duration::from_secs(60);
    while handle.server_stats().in_flight == 0 {
        assert!(Instant::now() < deadline, "batch never became in-flight");
        std::thread::yield_now();
    }

    // The big table holds its whole (1-slot) queue share: another request
    // for it bounces with a retry hint...
    let mut client = Client::connect(addr).unwrap();
    match client.explain("anything", &big_name, Some(1)) {
        Err(ClientError::Server(err)) => {
            assert_eq!(err.code, ErrorCode::Overloaded);
            assert!(err.retry_after_ms.is_some());
            assert!(err.message.contains("share"), "{}", err.message);
        }
        other => panic!("expected a table-share rejection, got {other:?}"),
    }
    // ... while a request for a different table is admitted and completes,
    // even though 15 of the 16 queue slots are still free for it.
    let explanation = client
        .explain("Which city hosted in 2008?", "olympics", None)
        .expect("other tables stay admitted while one table is saturated");
    assert!(!explanation.candidates.is_empty());

    batch_thread.join().expect("batch thread clean");
    let stats = handle.server_stats();
    assert!(stats.rejected_table_busy >= 1, "{stats:?}");
    assert_eq!(stats.rejected_overload, 0, "{stats:?}");
    handle.shutdown();
}

#[test]
fn asymmetric_tables_both_make_progress_under_concurrent_load() {
    let config = ServerConfig {
        max_in_flight: 16,
        per_table_tokens: 1,
        ..ServerConfig::default()
    };
    let big = big_table(300);
    let big_name = big.name().to_string();
    let (_engine, _catalog, handle) = serving_stack(config, vec![big]);
    let addr = handle.local_addr();

    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let big_questions = wtq_dataset::generate_questions(&big_table(300), 4, &mut rng);

    std::thread::scope(|scope| {
        // Two workers hammer the big table (serialized by the single
        // admission token)...
        let mut workers = Vec::new();
        for worker in 0..2 {
            let big_name = big_name.clone();
            let big_questions = &big_questions;
            workers.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("big client connects");
                for question in big_questions.iter().skip(worker * 2).take(2) {
                    let explanation = client
                        .explain(&question.question, &big_name, Some(2))
                        .expect("big-table request succeeds");
                    assert_eq!(explanation.table, big_name);
                }
            }));
        }
        // ... while two workers keep asking about the small tables; with
        // per-table admission the big table cannot occupy their tokens, so
        // every small request completes too.
        for _ in 0..2 {
            workers.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("small client connects");
                for _ in 0..3 {
                    let explanation = client
                        .explain("Which city hosted in 2008?", "olympics", Some(2))
                        .expect("small-table request succeeds");
                    assert!(!explanation.candidates.is_empty());
                }
            }));
        }
        for worker in workers {
            worker.join().expect("worker clean");
        }
    });

    let stats = handle.server_stats();
    assert_eq!(stats.rejected_overload, 0, "{stats:?}");
    assert_eq!(stats.requests, 2 * 2 + 2 * 3);
    assert_eq!(stats.in_flight, 0);
    handle.shutdown();
}

#[test]
fn registry_and_stats_surfaces_reflect_the_serving_state() {
    let (engine, catalog, handle) = serving_stack(ServerConfig::default(), Vec::new());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // The registry listing matches the catalog's own summaries.
    let tables = client.list_tables().unwrap();
    assert_eq!(tables, catalog.summaries());
    assert_eq!(tables.len(), 2);
    assert_eq!(tables[0].name, "medals");
    assert_eq!(tables[1].name, "olympics");

    let before = client.stats().unwrap();
    assert_eq!(before.engine.questions_served, 0);
    client
        .explain("Which city hosted in 2008?", "olympics", None)
        .unwrap();
    client
        .explain(
            "In what year did France hold the Olympics?",
            "olympics",
            None,
        )
        .unwrap();
    let after = client.stats().unwrap();
    assert_eq!(after.engine.questions_served, 2);
    assert!(after.engine.index_cache.hits >= 1, "{after:?}");
    assert_eq!(after.engine.index_cache.misses, 1);
    assert_eq!(after.server.requests, 2);
    assert_eq!(after.server.in_flight, 0);
    assert_eq!(after.server.tables, 2);
    assert!(after.server.connections >= 1);
    // The I/O layer is observable too: this client's connection is open,
    // the reactor pool is a fixed handful of threads, and the dispatch
    // pool — not the connection count — bounds worker threads.
    assert!(after.server.open_connections >= 1, "{after:?}");
    assert!(after.server.reactor_threads >= 1, "{after:?}");
    assert!(
        after.server.dispatch_threads >= after.server.max_in_flight,
        "{after:?}"
    );
    // The client-visible engine snapshot is the engine's own, plus the
    // serving layer's answer-cache counters (both questions were cold, so
    // each registered one miss and one insertion).
    let mut expected = engine.stats();
    expected.answer_cache = after.engine.answer_cache.clone();
    assert_eq!(after.engine, expected);
    assert_eq!(after.engine.answer_cache.misses, 2, "{after:?}");
    assert_eq!(after.engine.answer_cache.insertions, 2, "{after:?}");
    handle.shutdown();
}

/// Speak minimal HTTP/1.1 against the same port and parse the JSON body.
fn http_request(addr: std::net::SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn http_adapter_serves_the_same_dispatch_core() {
    let (engine, catalog, handle) = serving_stack(ServerConfig::default(), Vec::new());
    let addr = handle.local_addr();

    let (status, body) = http_request(addr, "GET /tables HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 200);
    assert!(body.contains("\"olympics\""));
    assert!(body.contains("\"medals\""));

    let explain = r#"{"question": "Which city hosted in 2008?", "table": "olympics", "top_k": 2}"#;
    let request = format!(
        "POST /explain HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
        explain.len(),
        explain
    );
    let (status, body) = http_request(addr, &request);
    assert_eq!(status, 200);
    // The HTTP body is the same ResponseBody JSON framed clients get.
    let parsed: wtq_server::ResponseBody = serde_json::from_str(&body).unwrap();
    match parsed {
        wtq_server::ResponseBody::Explanation(explanation) => {
            let table = catalog.get("olympics").unwrap();
            let direct = WireExplanation::from_candidates(
                "Which city hosted in 2008?",
                "olympics",
                &engine.explain_question("Which city hosted in 2008?", table, 2),
                table,
            );
            assert_eq!(
                serde_json::to_string(&explanation).unwrap(),
                serde_json::to_string(&direct).unwrap()
            );
        }
        other => panic!("expected an explanation, got {other:?}"),
    }

    let (status, _) = http_request(addr, "GET /stats HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 200);
    let (status, _) = http_request(addr, "GET /no-such-route HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 404);
    let (status, _) = http_request(
        addr,
        "POST /explain HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\nnot json",
    );
    assert_eq!(status, 400);

    let unknown = r#"{"question": "q", "table": "nope", "top_k": null}"#;
    let request = format!(
        "POST /explain HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
        unknown.len(),
        unknown
    );
    let (status, _) = http_request(addr, &request);
    assert_eq!(status, 404);
    handle.shutdown();
}

#[test]
fn graceful_shutdown_stops_accepting_and_drains() {
    let (_engine, _catalog, handle) = serving_stack(ServerConfig::default(), Vec::new());
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client
        .explain("Which city hosted in 2008?", "olympics", None)
        .unwrap();
    handle.shutdown();

    // The existing connection is closed...
    let after = client.explain("Which city hosted in 2008?", "olympics", None);
    assert!(after.is_err(), "connection must be closed after shutdown");
    // ... and the port no longer accepts (allow the OS a moment to tear it
    // down, then expect connect to fail or the socket to be dead).
    let reconnect = TcpStream::connect(addr);
    if let Ok(mut stream) = reconnect {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let _ = stream.write_all(&8u32.to_be_bytes());
        let mut buf = [0u8; 1];
        // No handler is alive to answer.
        assert!(matches!(stream.read(&mut buf), Ok(0) | Err(_)));
    }
}
