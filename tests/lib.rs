//! Marker library for the cross-crate integration-test package; all tests
//! live under `tests/tests/`.
