//! The highlight gallery of Figures 11–22: one provenance-based highlight
//! rendering per lambda DCS operator family, over the paper's own example
//! tables.
//!
//! Run with `cargo run -p wtq-examples --bin provenance_gallery`.

use wtq_dcs::parse_formula;
use wtq_examples::{indent, section};
use wtq_explain::utter;
use wtq_provenance::{render, Highlights};
use wtq_table::{samples, Table};

fn show(figure: &str, formula_text: &str, table: &Table) {
    let formula = parse_formula(formula_text).expect("gallery formula parses");
    let highlights = Highlights::compute(&formula, table).expect("gallery formula evaluates");
    section(figure);
    println!("query     : {formula}");
    println!("utterance : {}", utter(&formula));
    print!("{}", indent(&render::render_text(table, &highlights)));
}

fn main() {
    let olympics = samples::olympics();
    let squad = samples::squad();
    let medals = samples::medals();
    let temples = samples::temples();
    let yachts = samples::yachts();
    let wrecks = samples::shipwrecks();

    show("Figure 11 — simple join", "Name.Jule", &yachts);
    show("Figure 12 — comparison", "Games.(> 4)", &squad);
    show("Figure 13 — reverse join", "R[Year].City.Athens", &olympics);
    show(
        "Figure 14 — previous row",
        "R[City].Prev.City.London",
        &olympics,
    );
    show(
        "Figure 15 — next row",
        "R[City].R[Prev].City.Athens",
        &olympics,
    );
    show("Figure 16 — aggregation", "count(City.Athens)", &olympics);
    show(
        "Figure 17 — difference of values",
        "sub(R[Total].Nation.Fiji, R[Total].Nation.Tonga)",
        &medals,
    );
    show(
        "Figure 18 — difference of occurrences",
        "sub(count(Town.Matsuyama), count(Town.Imabari))",
        &temples,
    );
    show(
        "Figure 19 — union",
        "R[City].(Country.China or Country.Greece)",
        &olympics,
    );
    show(
        "Figure 20 — intersection",
        "R[City].(Country.UK and Year.2012)",
        &olympics,
    );
    show(
        "Figure 21 — superlative over values",
        "compare_max((London or Beijing), Year, City)",
        &olympics,
    );
    show(
        "Figure 22 — most common value",
        "most_common(R[Lake].Rows, Lake)",
        &wrecks,
    );

    println!("\n{}", render::TEXT_LEGEND);
}
