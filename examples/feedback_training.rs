//! Training on user feedback (§7.3 / Table 9): collect question–query
//! annotations through explanations with 2-of-3 worker agreement, retrain the
//! semantic parser on them, and compare development-set correctness with and
//! without the annotations.
//!
//! Run with `cargo run -p wtq-examples --bin feedback_training --release`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wtq_dataset::dataset::{Dataset, DatasetConfig};
use wtq_examples::section;
use wtq_parser::{SemanticParser, TrainConfig, TrainExample};
use wtq_study::deploy::study_examples_from;
use wtq_study::{collect_annotations, FeedbackExperiment, SimulatedUser};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let dataset = Dataset::generate(
        &DatasetConfig {
            num_tables: 14,
            questions_per_table: 8,
            test_fraction: 0.3,
        },
        &mut rng,
    );
    let catalog = dataset.catalog();
    let train_pool = study_examples_from(&dataset, wtq_dataset::Split::Train, 70, &mut rng);
    let dev_pool = study_examples_from(&dataset, wtq_dataset::Split::Test, 40, &mut rng);

    section("Annotation collection (3 workers, 2-of-3 agreement)");
    let baseline = SemanticParser::with_prior();
    let annotated = collect_annotations(
        &baseline,
        &train_pool,
        &catalog,
        7,
        3,
        2,
        &SimulatedUser::average(),
        99,
    );
    println!("questions shown      : {}", train_pool.len());
    println!("annotated questions  : {}", annotated.len());
    println!(
        "annotation precision : {:.1}%",
        FeedbackExperiment::annotation_precision(&annotated) * 100.0
    );

    section("Retraining (Table 9 shape)");
    let dev: Vec<(TrainExample, wtq_dcs::Formula)> = dev_pool
        .iter()
        .map(|e| {
            (
                TrainExample::weak(e.question.clone(), e.table.clone(), e.answer.clone()),
                e.gold.clone(),
            )
        })
        .collect();
    let experiment = FeedbackExperiment {
        train_config: TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        },
        top_k: 7,
    };
    let with = experiment.train_and_evaluate(&annotated, &dev, &catalog, true);
    let without = experiment.train_and_evaluate(&annotated, &dev, &catalog, false);
    println!("train ex.  annotations  correctness   MRR");
    println!(
        "{:>9}  {:>11}  {:>10.1}%  {:.3}",
        with.train_examples,
        with.annotations,
        with.correctness * 100.0,
        with.mrr
    );
    println!(
        "{:>9}  {:>11}  {:>10.1}%  {:.3}",
        without.train_examples,
        without.annotations,
        without.correctness * 100.0,
        without.mrr
    );
}
