//! The running example of Figure 1: the Olympic-games table, the correct and
//! an incorrect candidate for the same question, and why explanations are
//! needed to tell them apart even though both return 2004.
//!
//! Run with `cargo run -p wtq-examples --bin olympics`.

use wtq_core::ExplanationPipeline;
use wtq_dcs::{eval, parse_formula, Answer};
use wtq_examples::{indent, section};
use wtq_explain::derivation;
use wtq_table::samples;

fn main() {
    let table = samples::usl_league();
    let pipeline = ExplanationPipeline::new();
    let question = "What was the last year the team was a part of the USL A-League?";

    section("Figure 8 — two candidates, one answer");
    println!("question: {question}\n");
    for text in [
        "max(R[Year].League.\"USL A-League\")",
        "min(R[Year].argmax(Rows, \"Open Cup\"))",
    ] {
        let formula = parse_formula(text).expect("example formula parses");
        let answer = Answer::from_denotation(&eval(&formula, &table).expect("evaluates"));
        let explained = pipeline
            .explain_formula(&formula, &table)
            .expect("explains");
        println!("query     : {formula}");
        println!("utterance : {}", explained.utterance);
        println!("answer    : {answer}");
        print!("{}", indent(&explained.render_highlights(&table, false)));
        println!();
    }
    println!(
        "Both candidates return 2004, but only the first is a correct translation —\n\
         exactly the ambiguity the paper's explanations let a non-expert resolve."
    );

    section("Figure 3 — derivation tree of the Figure 1 query");
    let figure_one = parse_formula("max(R[Year].Country.Greece)").expect("parses");
    print!("{}", derivation(&figure_one).render_tree());
}
