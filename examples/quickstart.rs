//! Quickstart: ask a question over a web table and inspect the explained
//! candidate queries (utterance, highlights, SQL).
//!
//! Run with `cargo run -p wtq-examples --bin quickstart`.

use wtq_core::ExplanationPipeline;
use wtq_examples::{indent, section};
use wtq_table::samples;

fn main() {
    let pipeline = ExplanationPipeline::new();
    let table = samples::olympics();
    let question = "Greece held its last Olympics in what year?";

    section("Table");
    println!("{table}");
    section("Question");
    println!("{question}");

    let explained = pipeline.explain_question(question, &table, 3);
    for (rank, candidate) in explained.iter().enumerate() {
        section(&format!(
            "Candidate #{} (score {:.2})",
            rank + 1,
            candidate.score
        ));
        println!("lambda DCS : {}", candidate.formula);
        println!("utterance  : {}", candidate.utterance);
        if let Some(sql) = &candidate.sql {
            println!("SQL        : {sql}");
        }
        println!("answer     : {}", candidate.answer);
        println!("highlights :");
        print!("{}", indent(&candidate.render_highlights(&table, false)));
    }
    println!("\n{}", wtq_provenance::render::TEXT_LEGEND);
}
