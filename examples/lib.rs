//! Shared helpers for the runnable examples.
//!
//! Each example binary in this package exercises the public `wtq-core` API on
//! one of the scenarios the paper motivates; this small library only holds
//! formatting helpers they share.

/// Print a section header to stdout.
pub fn section(title: &str) {
    println!("\n=== {title} ===\n");
}

/// Indent every line of a block by four spaces.
pub fn indent(block: &str) -> String {
    block.lines().map(|l| format!("    {l}\n")).collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn indent_prefixes_every_line() {
        assert_eq!(super::indent("a\nb"), "    a\n    b\n");
    }
}
