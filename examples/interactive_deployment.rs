//! Interactive deployment (§6.3 / §7.2): run the parser over held-out
//! questions, show the top-7 explained candidates to a simulated non-expert
//! user, and compare parser / user / hybrid correctness against the top-k
//! bound — the Table 6 experiment in miniature.
//!
//! Run with `cargo run -p wtq-examples --bin interactive_deployment --release`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wtq_dataset::dataset::{Dataset, DatasetConfig};
use wtq_examples::section;
use wtq_parser::SemanticParser;
use wtq_study::deploy::study_examples_from;
use wtq_study::{DeploymentExperiment, SimulatedUser};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let dataset = Dataset::generate(
        &DatasetConfig {
            num_tables: 16,
            questions_per_table: 8,
            test_fraction: 0.25,
        },
        &mut rng,
    );
    let catalog = dataset.catalog();
    let examples = study_examples_from(&dataset, wtq_dataset::Split::Test, 60, &mut rng);

    section("Deployment experiment");
    println!("test questions : {}", examples.len());
    let parser = SemanticParser::with_prior();
    let experiment = DeploymentExperiment::default();
    let result = experiment.run(&parser, &examples, &catalog, &SimulatedUser::average(), 7);

    println!("explanations shown        : {}", result.explanations_shown);
    println!(
        "parser correctness (top-1): {:.1}%",
        result.parser_correctness * 100.0
    );
    println!(
        "user correctness          : {:.1}%",
        result.user_correctness * 100.0
    );
    println!(
        "hybrid correctness        : {:.1}%",
        result.hybrid_correctness * 100.0
    );
    println!("correctness bound (top-7) : {:.1}%", result.bound * 100.0);
    println!("MRR                       : {:.3}", result.mrr);
    println!(
        "user success rate         : {:.1}%",
        result.user_success_rate * 100.0
    );

    section("Coverage sweep (top-k bound)");
    for (k, coverage) in
        DeploymentExperiment::coverage_sweep(&parser, &examples, &catalog, &[1, 3, 7, 14])
    {
        println!("k = {k:>2} : {:.1}%", coverage * 100.0);
    }
}
